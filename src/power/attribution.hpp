// Hierarchical power attribution: per-net energy accounting rolled up to
// components, clock domains and DFG-level operations.
//
// The estimator (power/estimator.hpp) answers "how many mW does this design
// burn, by category?" from a whole-run Activity record. This module answers
// the profiler questions behind it: *which* component, serving *which* DFG
// operation, in *which* clock domain, burned the energy — and *when* within
// the master period. Two coupled pieces:
//
//  * `Attribution` — built once per design from the same TechLibrary the
//    estimator uses. It precomputes a per-net energy weight
//    (net_cap * Vdd^2, fJ per bit toggle), a per-storage-element clock
//    event weight (clock pin cap * width, plus the gate event cap when the
//    pin is gated) and a per-phase tree pulse weight
//    (clock_tree_cap(sinks) * Vdd^2), mirroring estimate_power()'s terms
//    exactly so the attributed total reconciles with the estimator's mW
//    figures (power_mw = total_fj * f_master / steps * 1e-12).
//  * `attribute(Activity)` — weights a finished run's toggle counts into an
//    AttributionReport: one row per component (plus one pseudo-row per
//    clock-tree root), each carrying its group (fu/mux/iso/storage/...),
//    clock domain (0 = global, 1..n = partition) and the synthesis-time
//    DFG-op label recorded in Design::comp_op. Integer toggle counts are
//    conserved exactly: the component rows' toggles sum to the Activity's
//    total net toggles, and every fJ of the report total is attributed to
//    exactly one row.
//
// For time-resolved views, `energy_model()` exports the same weights as a
// sim::EnergyModel, which a sim::PowerProbe folds into per-step, per-domain
// energies while the simulator runs (see sim/power_probe.hpp) — the probe's
// whole-run totals agree with attribute() on the same Activity to FP
// rounding. `publish_power_tracks()` turns a probe's waveform into obs
// counter tracks so the per-domain power shows up as counter series in the
// Chrome trace next to the host-time spans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "power/tech_library.hpp"
#include "rtl/design.hpp"
#include "sim/activity.hpp"
#include "sim/power_probe.hpp"

namespace mcrtl::power {

/// One leaf of the attribution hierarchy: a netlist component, or (for
/// group "clock_tree") one phase's clock distribution root.
struct AttributionRow {
  std::string component;  ///< component name, or "clk<p>.tree" for tree rows
  std::string group;      ///< fu|mux|iso|storage|control|io|const|clock_tree
  std::string op;         ///< DFG-op label (Design::comp_op); group if none
  int domain = 0;         ///< 0 = global, 1..n = clock partition
  std::uint64_t toggles = 0;  ///< output-net bit toggles (tree rows: pulses)
  std::uint64_t clock_events = 0;  ///< storage rows: delivered clock events
  double energy_fj = 0.0;  ///< everything attributable to this row, incl.
                           ///< clock pin + gate energy for storage rows
};

/// Category sums matching estimate_power()'s PowerBreakdown fields, in fJ.
/// Unlike the rows (where a storage element's clock-gate energy stays with
/// the element), gate energy counts as clock_tree here, exactly as the
/// estimator books it.
struct CategoryEnergy {
  double combinational_fj = 0.0;
  double storage_fj = 0.0;
  double clock_tree_fj = 0.0;
  double control_fj = 0.0;
  double io_fj = 0.0;
};

struct AttributionReport {
  /// Rows sorted hottest-first (energy desc, then name asc — deterministic
  /// under FP ties). Zero-energy, zero-toggle components are omitted.
  std::vector<AttributionRow> rows;
  /// Energy per clock domain, index 0 = global, 1..n = partitions.
  std::vector<double> domain_fj;
  CategoryEnergy category;
  double total_fj = 0.0;           ///< == sum of rows[].energy_fj
  std::uint64_t total_toggles = 0; ///< == sum of Activity::net_toggles
  std::uint64_t steps = 0;         ///< master cycles of the attributed run

  /// Average power of the whole report in mW at master frequency `f_hz`.
  double total_mw(double f_hz) const;

  /// Flamegraph collapsed-stack lines: "domain;component;op <fJ>\n" with
  /// integer-rounded fJ values, one line per row, hottest first. Feed to
  /// flamegraph.pl / speedscope / inferno as a folded-stacks file.
  std::string collapsed_stacks() const;

  /// Human-readable top-k hotspot table (util::table).
  std::string top_table(std::size_t k) const;
};

/// Per-design energy weights + the roll-up maps. Construct once per
/// synthesized design; `attribute()` is then a pure function of Activity.
class Attribution {
 public:
  Attribution(const rtl::Design& design, const TechLibrary& tech,
              double vdd = 4.65);

  /// The same weights in the simulator-facing form consumed by
  /// sim::PowerProbe. Valid as long as this Attribution is alive.
  const sim::EnergyModel& energy_model() const { return model_; }

  /// Weight a whole-run Activity record into the hierarchical report.
  AttributionReport attribute(const sim::Activity& activity) const;

 private:
  const rtl::Design* design_;
  sim::EnergyModel model_;
  /// Storage clock energy split the probe does not need but the category
  /// accounting does: pin (storage category) vs gate (clock_tree category),
  /// fJ per delivered clock event, indexed by CompId.
  std::vector<double> pin_fj_;
  std::vector<double> gate_fj_;
};

/// Publish a probe's per-domain waveform as obs counter tracks named
/// "power.global" / "power.clk<p>" (fJ per master cycle, timestamped by
/// step index). No-op while obs collection is disabled.
void publish_power_tracks(const sim::PowerProbe& probe);

/// Display label of a clock domain: "global" for 0, "clk<d>" otherwise.
std::string domain_label(int domain);

}  // namespace mcrtl::power
