// Benchmark behaviours used in the paper's evaluation, rebuilt from the
// literature it cites (see DESIGN.md for the substitution notes):
//
//  * motivating  — the Fig. 1 example: 6 (+,-) operations in 5 steps whose
//                  odd/even split yields the paper's Circuit 2;
//  * facet       — the FACET example [Tseng & Siewiorek 83]: the op mix of
//                  the paper's Table 1 (+, -, *, /, &, |);
//  * hal         — the HAL differential-equation benchmark [Paulin &
//                  Knight 89]: one Euler step of y'' + 3xy' + 3y = 0
//                  (6 *, 2 +, 2 -, 1 <);
//  * biquad      — two cascaded direct-form-II biquad sections [Green &
//                  Turner 88];
//  * bandpass    — a fourth-order band-pass filter (direct-form-I biquad
//                  cascade) [Kung/Whitehouse/Kailath 85];
//
// plus extension workloads for wider coverage:
//
//  * ewf         — a 5th-order elliptic-wave-filter-like behaviour
//                  (add-dominated, 8 *, 26 +);
//  * ar_lattice  — an auto-regressive lattice filter stage (mul-heavy);
//  * fir8        — an 8-tap FIR filter.
//
// Each benchmark comes with a deterministic reference schedule (ASAP or
// resource-constrained list schedule) so the tables are reproducible.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "dfg/schedule.hpp"

namespace mcrtl::suite {

/// A behaviour plus its reference schedule. The schedule points into the
/// graph, so both are heap-held and the struct is freely movable.
struct Benchmark {
  std::string name;
  std::string description;
  std::unique_ptr<dfg::Graph> graph;
  std::unique_ptr<dfg::Schedule> schedule;
};

Benchmark motivating(unsigned width = 4);
Benchmark facet(unsigned width = 4);
Benchmark hal(unsigned width = 4);
Benchmark biquad(unsigned width = 4);
Benchmark bandpass(unsigned width = 4);
Benchmark ewf(unsigned width = 4);
Benchmark ar_lattice(unsigned width = 4);
Benchmark fir8(unsigned width = 4);
/// 4-point DCT butterfly network (mul/add balanced, wide parallelism).
Benchmark dct4(unsigned width = 4);

/// All benchmark names accepted by `by_name`.
std::vector<std::string> all_names();
/// Factory by name; throws mcrtl::Error for unknown names.
Benchmark by_name(const std::string& name, unsigned width = 4);

}  // namespace mcrtl::suite
