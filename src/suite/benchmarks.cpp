#include "suite/benchmarks.hpp"

#include "util/error.hpp"

namespace mcrtl::suite {

using dfg::Graph;
using dfg::Op;
using dfg::ResourceLimits;
using dfg::Schedule;
using dfg::ValueId;

namespace {

/// Finish a benchmark: validate and attach the given schedule.
Benchmark finish(std::string name, std::string description,
                 std::unique_ptr<Graph> g, Schedule sched) {
  g->validate();
  sched.validate();
  Benchmark b;
  b.name = std::move(name);
  b.description = std::move(description);
  // The schedule must reference the heap graph it was built on.
  b.schedule = std::make_unique<Schedule>(std::move(sched));
  b.graph = std::move(g);
  return b;
}

}  // namespace

Benchmark motivating(unsigned width) {
  // Fig. 1: six (+,-) operations in five steps. The reference schedule is
  // the paper's: N1@T1, N2@T2, {N3,N4}@T3, N5@T4, N6@T5, so the odd/even
  // split puts {N1,N3,N4p? } ... exactly the unshaded/shaded partition of
  // Fig. 1(c) under the 2-clock rule k = t mod 2.
  auto g = std::make_unique<Graph>("motivating", width);
  const ValueId a = g->add_input("a");
  const ValueId b = g->add_input("b");
  const ValueId c = g->add_input("c");
  const ValueId d = g->add_input("d");
  const ValueId e = g->add_input("e");
  const ValueId f = g->add_input("f");
  const ValueId gg = g->add_input("g");

  const auto n1 = g->add_node(Op::Add, {a, b}, "N1");
  const auto n2 = g->add_node(Op::Sub, {g->node(n1).output, c}, "N2");
  const auto n3 = g->add_node(Op::Add, {g->node(n2).output, d}, "N3");
  const auto n4 = g->add_node(Op::Sub, {e, f}, "N4");
  const auto n5 = g->add_node(Op::Add, {g->node(n4).output, gg}, "N5");
  const auto n6 = g->add_node(Op::Sub, {g->node(n3).output, g->node(n5).output}, "N6");
  g->mark_output(g->node(n6).output);

  Schedule s(*g);
  s.set_step(n1, 1);
  s.set_step(n2, 2);
  s.set_step(n3, 3);
  s.set_step(n4, 3);
  s.set_step(n5, 4);
  s.set_step(n6, 5);
  return finish("motivating", "paper Fig. 1 example (6 ops, 5 steps)",
                std::move(g), std::move(s));
}

Benchmark facet(unsigned width) {
  // Reconstructed from the op mix of the paper's Table 1: a small behaviour
  // over {+, -, *, /, &, |} with enough step-level parallelism that the
  // conventional allocation needs four ALUs including a multiplier and a
  // divider.
  auto g = std::make_unique<Graph>("facet", width);
  const ValueId a = g->add_input("a");
  const ValueId b = g->add_input("b");
  const ValueId c = g->add_input("c");
  const ValueId d = g->add_input("d");
  const ValueId e = g->add_input("e");
  const ValueId f = g->add_input("f");

  const ValueId m1 = g->add_op(Op::Mul, a, b, "m1");        // a*b
  const ValueId s1 = g->add_op(Op::Add, c, d, "s1");        // c+d
  const ValueId l1 = g->add_op(Op::And, e, f, "l1");        // e&f
  const ValueId q1 = g->add_op(Op::Div, m1, s1, "q1");      // (a*b)/(c+d)
  const ValueId s2 = g->add_op(Op::Sub, s1, e, "s2");       // c+d-e
  const ValueId l2 = g->add_op(Op::Or, l1, s2, "l2");       // (e&f)|(c+d-e)
  const ValueId s3 = g->add_op(Op::Add, q1, l2, "s3");
  const ValueId s4 = g->add_op(Op::Sub, s3, l1, "s4");
  g->mark_output(s3);
  g->mark_output(s4);

  ResourceLimits limits;
  limits.default_limit = 2;
  limits.per_op[Op::Mul] = 1;
  limits.per_op[Op::Div] = 1;
  Schedule s = dfg::schedule_list(*g, limits);
  return finish("facet", "FACET example (op mix of Table 1)", std::move(g),
                std::move(s));
}

Benchmark hal(unsigned width) {
  // One Euler integration step of y'' + 3xy' + 3y = 0 (the HAL benchmark):
  //   x1 = x + dx
  //   u1 = u - 3*x*(u*dx) - 3*y*dx
  //   y1 = y + u*dx
  //   c  = x1 < a
  auto g = std::make_unique<Graph>("hal", width);
  const ValueId x = g->add_input("x");
  const ValueId y = g->add_input("y");
  const ValueId u = g->add_input("u");
  const ValueId dx = g->add_input("dx");
  const ValueId a = g->add_input("a");
  const ValueId three = g->add_constant(3, "three");

  const ValueId m1 = g->add_op(Op::Mul, three, x, "m1");   // 3x
  const ValueId m2 = g->add_op(Op::Mul, u, dx, "m2");      // u*dx
  const ValueId m3 = g->add_op(Op::Mul, three, y, "m3");   // 3y
  const ValueId m4 = g->add_op(Op::Mul, m1, m2, "m4");     // 3x*u*dx
  const ValueId m5 = g->add_op(Op::Mul, m3, dx, "m5");     // 3y*dx
  const ValueId m6 = g->add_op(Op::Mul, u, dx, "m6");      // u*dx (for y1)
  const ValueId s1 = g->add_op(Op::Sub, u, m4, "s1");      // u - 3x*u*dx
  const ValueId u1 = g->add_op(Op::Sub, s1, m5, "u1");
  const ValueId x1 = g->add_op(Op::Add, x, dx, "x1");
  const ValueId y1 = g->add_op(Op::Add, y, m6, "y1");
  const ValueId cc = g->add_op(Op::Lt, x1, a, "c");
  g->mark_output(u1);
  g->mark_output(x1);
  g->mark_output(y1);
  g->mark_output(cc);

  ResourceLimits limits;
  limits.default_limit = 2;
  limits.per_op[Op::Mul] = 2;  // the classic 2-multiplier HAL schedule
  Schedule s = dfg::schedule_list(*g, limits);
  return finish("hal", "HAL differential equation [Paulin-Knight 89]",
                std::move(g), std::move(s));
}

Benchmark biquad(unsigned width) {
  // Two cascaded direct-form-II biquad sections. Filter state (w1, w2 per
  // section) enters as primary inputs and the updated state leaves as
  // primary outputs; the harness feeds it back between computations.
  auto g = std::make_unique<Graph>("biquad", width);
  const ValueId x = g->add_input("x");
  const ValueId w11 = g->add_input("w11");
  const ValueId w12 = g->add_input("w12");
  const ValueId w21 = g->add_input("w21");
  const ValueId w22 = g->add_input("w22");
  const ValueId a11 = g->add_constant(3, "a11");
  const ValueId a12 = g->add_constant(-2, "a12");
  const ValueId b10 = g->add_constant(1, "b10");
  const ValueId b11 = g->add_constant(2, "b11");
  const ValueId b12 = g->add_constant(1, "b12");
  const ValueId a21 = g->add_constant(2, "a21");
  const ValueId a22 = g->add_constant(-1, "a22");
  const ValueId b21 = g->add_constant(2, "b21");

  // Section 1: w = x - a11*w11 - a12*w12 ; y = b10*w + b11*w11 + b12*w12
  const ValueId p1 = g->add_op(Op::Mul, a11, w11, "p1");
  const ValueId p2 = g->add_op(Op::Mul, a12, w12, "p2");
  const ValueId d1 = g->add_op(Op::Sub, x, p1, "d1");
  const ValueId w1n = g->add_op(Op::Sub, d1, p2, "w1n");
  const ValueId p3 = g->add_op(Op::Mul, b10, w1n, "p3");
  const ValueId p4 = g->add_op(Op::Mul, b11, w11, "p4");
  const ValueId p5 = g->add_op(Op::Mul, b12, w12, "p5");
  const ValueId s1 = g->add_op(Op::Add, p3, p4, "s1");
  const ValueId y1 = g->add_op(Op::Add, s1, p5, "y1");
  // Section 2 on y1.
  const ValueId p6 = g->add_op(Op::Mul, a21, w21, "p6");
  const ValueId p7 = g->add_op(Op::Mul, a22, w22, "p7");
  const ValueId d2 = g->add_op(Op::Sub, y1, p6, "d2");
  const ValueId w2n = g->add_op(Op::Sub, d2, p7, "w2n");
  const ValueId p8 = g->add_op(Op::Mul, b21, w2n, "p8");
  const ValueId p9 = g->add_op(Op::Mul, b11, w21, "p9");
  const ValueId p10 = g->add_op(Op::Mul, b12, w22, "p10");
  const ValueId s2 = g->add_op(Op::Add, p8, p9, "s2");
  const ValueId y2 = g->add_op(Op::Add, s2, p10, "y2");

  g->mark_output(y2);
  g->mark_output(w1n);  // next w11 (w12 <- old w11 outside)
  g->mark_output(w2n);

  ResourceLimits limits;
  limits.default_limit = 2;
  limits.per_op[Op::Mul] = 2;
  Schedule s = dfg::schedule_list(*g, limits);
  return finish("biquad", "two cascaded direct-form-II biquad sections",
                std::move(g), std::move(s));
}

Benchmark bandpass(unsigned width) {
  // Fourth-order band-pass filter: two direct-form-I sections with one
  // shared multiplier's worth of concurrency (the paper's conventional
  // band-pass design has a single (*) ALU, i.e. a long, serial schedule).
  auto g = std::make_unique<Graph>("bandpass", width);
  const ValueId x = g->add_input("x");
  const ValueId x1 = g->add_input("x1");
  const ValueId x2 = g->add_input("x2");
  const ValueId y1 = g->add_input("y1");
  const ValueId y2 = g->add_input("y2");
  const ValueId v1 = g->add_input("v1");
  const ValueId v2 = g->add_input("v2");
  const ValueId b0 = g->add_constant(1, "b0");
  const ValueId b2 = g->add_constant(-1, "b2");
  const ValueId a1 = g->add_constant(2, "a1");
  const ValueId a2 = g->add_constant(-1, "a2");
  const ValueId c1 = g->add_constant(3, "c1");
  const ValueId c2 = g->add_constant(-2, "c2");

  // Section 1 (direct form I): w = b0*x + b2*x2 + a1*y1 + a2*y2
  const ValueId q1 = g->add_op(Op::Mul, b0, x, "q1");
  const ValueId q2 = g->add_op(Op::Mul, b2, x2, "q2");
  const ValueId q3 = g->add_op(Op::Mul, a1, y1, "q3");
  const ValueId q4 = g->add_op(Op::Mul, a2, y2, "q4");
  const ValueId t1 = g->add_op(Op::Add, q1, q2, "t1");
  const ValueId t2 = g->add_op(Op::Add, q3, q4, "t2");
  const ValueId w = g->add_op(Op::Add, t1, t2, "w");
  // Section 2: z = b0*w + b2*v2 + c1*v1 + c2*... (v = section-2 output
  // history)
  const ValueId q5 = g->add_op(Op::Mul, b0, w, "q5");
  const ValueId q6 = g->add_op(Op::Mul, b2, x1, "q6");
  const ValueId q7 = g->add_op(Op::Mul, c1, v1, "q7");
  const ValueId q8 = g->add_op(Op::Mul, c2, v2, "q8");
  const ValueId t3 = g->add_op(Op::Add, q5, q6, "t3");
  const ValueId t4 = g->add_op(Op::Add, q7, q8, "t4");
  const ValueId z = g->add_op(Op::Add, t3, t4, "z");

  g->mark_output(w);   // next y1
  g->mark_output(z);   // filter output, next v1

  ResourceLimits limits;
  limits.default_limit = 2;
  limits.per_op[Op::Mul] = 1;  // serial multiplier, as in Table 4's baseline
  Schedule s = dfg::schedule_list(*g, limits);
  return finish("bandpass", "fourth-order band-pass filter (DF-I cascade)",
                std::move(g), std::move(s));
}

Benchmark ewf(unsigned width) {
  // Elliptic-wave-filter-like behaviour: the classic 34-op, add-dominated
  // profile (8 *, 26 +) of the 5th-order EWF benchmark, built as a ladder
  // of adder chains with multiplier taps.
  auto g = std::make_unique<Graph>("ewf", width);
  std::vector<ValueId> in;
  for (int i = 0; i < 8; ++i) in.push_back(g->add_input("s" + std::to_string(i)));
  const ValueId x = g->add_input("x");
  std::vector<ValueId> k;
  for (int i = 0; i < 8; ++i) {
    k.push_back(g->add_constant(i % 3 + 1, "k" + std::to_string(i)));
  }

  // Ladder: alternating accumulate / tap-scale stages.
  std::vector<ValueId> acc;
  ValueId carry = x;
  for (int i = 0; i < 8; ++i) {
    const ValueId sum1 = g->add_op(Op::Add, carry, in[static_cast<std::size_t>(i)]);
    const ValueId tap = g->add_op(Op::Mul, k[static_cast<std::size_t>(i)], sum1);
    const ValueId sum2 = g->add_op(Op::Add, tap, in[static_cast<std::size_t>(7 - i)]);
    carry = g->add_op(Op::Add, sum1, sum2);
    acc.push_back(sum2);
  }
  // Output combining tree.
  while (acc.size() > 1) {
    std::vector<ValueId> next;
    for (std::size_t i = 0; i + 1 < acc.size(); i += 2) {
      next.push_back(g->add_op(Op::Add, acc[i], acc[i + 1]));
    }
    if (acc.size() % 2) next.push_back(acc.back());
    acc = std::move(next);
  }
  g->mark_output(acc[0]);
  g->mark_output(carry);

  ResourceLimits limits;
  limits.default_limit = 3;
  limits.per_op[Op::Mul] = 2;
  Schedule s = dfg::schedule_list(*g, limits);
  return finish("ewf", "elliptic-wave-filter-like ladder (add-dominated)",
                std::move(g), std::move(s));
}

Benchmark ar_lattice(unsigned width) {
  // Two stages of an auto-regressive lattice filter: multiplier-heavy with
  // tight cross-stage dependences.
  auto g = std::make_unique<Graph>("ar_lattice", width);
  const ValueId f0 = g->add_input("f0");
  const ValueId b0 = g->add_input("b0");
  const ValueId b1 = g->add_input("b1");
  const ValueId k1 = g->add_constant(2, "k1");
  const ValueId k2 = g->add_constant(-3, "k2");

  // Stage 1: f1 = f0 - k1*b0 ; b1n = b0 - k1*f1
  const ValueId m1 = g->add_op(Op::Mul, k1, b0, "m1");
  const ValueId f1 = g->add_op(Op::Sub, f0, m1, "f1");
  const ValueId m2 = g->add_op(Op::Mul, k1, f1, "m2");
  const ValueId b1n = g->add_op(Op::Sub, b0, m2, "b1n");
  // Stage 2 on (f1, b1).
  const ValueId m3 = g->add_op(Op::Mul, k2, b1, "m3");
  const ValueId f2 = g->add_op(Op::Sub, f1, m3, "f2");
  const ValueId m4 = g->add_op(Op::Mul, k2, f2, "m4");
  const ValueId b2n = g->add_op(Op::Sub, b1, m4, "b2n");
  // Energy estimate: e = f2*f2 + b2n*b2n.
  const ValueId e1 = g->add_op(Op::Mul, f2, f2, "e1");
  const ValueId e2 = g->add_op(Op::Mul, b2n, b2n, "e2");
  const ValueId e = g->add_op(Op::Add, e1, e2, "e");

  g->mark_output(f2);
  g->mark_output(b1n);
  g->mark_output(b2n);
  g->mark_output(e);

  ResourceLimits limits;
  limits.default_limit = 2;
  limits.per_op[Op::Mul] = 2;
  Schedule s = dfg::schedule_list(*g, limits);
  return finish("ar_lattice", "two-stage AR lattice filter (mul-heavy)",
                std::move(g), std::move(s));
}

Benchmark fir8(unsigned width) {
  // 8-tap FIR: y = sum c_i * x_i. Taps enter as primary inputs (the delay
  // line lives outside, like the biquad state).
  auto g = std::make_unique<Graph>("fir8", width);
  std::vector<ValueId> taps;
  for (int i = 0; i < 8; ++i) taps.push_back(g->add_input("x" + std::to_string(i)));
  std::vector<ValueId> coef;
  for (int i = 0; i < 8; ++i) {
    coef.push_back(g->add_constant((i % 4) - 1, "c" + std::to_string(i)));
  }
  std::vector<ValueId> prods;
  for (int i = 0; i < 8; ++i) {
    prods.push_back(g->add_op(Op::Mul, coef[static_cast<std::size_t>(i)],
                              taps[static_cast<std::size_t>(i)]));
  }
  while (prods.size() > 1) {
    std::vector<ValueId> next;
    for (std::size_t i = 0; i + 1 < prods.size(); i += 2) {
      next.push_back(g->add_op(Op::Add, prods[i], prods[i + 1]));
    }
    if (prods.size() % 2) next.push_back(prods.back());
    prods = std::move(next);
  }
  g->mark_output(prods[0]);

  ResourceLimits limits;
  limits.default_limit = 2;
  limits.per_op[Op::Mul] = 2;
  Schedule s = dfg::schedule_list(*g, limits);
  return finish("fir8", "8-tap FIR filter", std::move(g), std::move(s));
}

Benchmark dct4(unsigned width) {
  // 4-point DCT-II via the even/odd butterfly decomposition:
  //   s0 = x0 + x3, s1 = x1 + x2, d0 = x0 - x3, d1 = x1 - x2
  //   X0 = c4*(s0 + s1)          X2 = c4*(s0 - s1)
  //   X1 = c2*d0 + c6*d1         X3 = c6*d0 - c2*d1
  // (integer cosine coefficients; wide step-level parallelism makes this a
  // good stress for the partitioners).
  auto g = std::make_unique<Graph>("dct4", width);
  std::vector<ValueId> x;
  for (int i = 0; i < 4; ++i) x.push_back(g->add_input("x" + std::to_string(i)));
  const ValueId c4 = g->add_constant(3, "c4");
  const ValueId c2 = g->add_constant(4, "c2");
  const ValueId c6 = g->add_constant(2, "c6");

  const ValueId s0 = g->add_op(Op::Add, x[0], x[3], "s0");
  const ValueId s1 = g->add_op(Op::Add, x[1], x[2], "s1");
  const ValueId d0 = g->add_op(Op::Sub, x[0], x[3], "d0");
  const ValueId d1 = g->add_op(Op::Sub, x[1], x[2], "d1");

  const ValueId e0 = g->add_op(Op::Add, s0, s1, "e0");
  const ValueId e1 = g->add_op(Op::Sub, s0, s1, "e1");
  const ValueId X0 = g->add_op(Op::Mul, c4, e0, "X0");
  const ValueId X2 = g->add_op(Op::Mul, c4, e1, "X2");

  const ValueId p0 = g->add_op(Op::Mul, c2, d0, "p0");
  const ValueId p1 = g->add_op(Op::Mul, c6, d1, "p1");
  const ValueId p2 = g->add_op(Op::Mul, c6, d0, "p2");
  const ValueId p3 = g->add_op(Op::Mul, c2, d1, "p3");
  const ValueId X1 = g->add_op(Op::Add, p0, p1, "X1");
  const ValueId X3 = g->add_op(Op::Sub, p2, p3, "X3");

  g->mark_output(X0);
  g->mark_output(X1);
  g->mark_output(X2);
  g->mark_output(X3);

  ResourceLimits limits;
  limits.default_limit = 2;
  limits.per_op[Op::Mul] = 2;
  Schedule s = dfg::schedule_list(*g, limits);
  return finish("dct4", "4-point DCT-II butterfly network", std::move(g),
                std::move(s));
}

std::vector<std::string> all_names() {
  return {"motivating", "facet", "hal",        "biquad", "bandpass",
          "ewf",        "fir8",  "ar_lattice", "dct4"};
}

Benchmark by_name(const std::string& name, unsigned width) {
  if (name == "motivating") return motivating(width);
  if (name == "facet") return facet(width);
  if (name == "hal") return hal(width);
  if (name == "biquad") return biquad(width);
  if (name == "bandpass") return bandpass(width);
  if (name == "ewf") return ewf(width);
  if (name == "ar_lattice") return ar_lattice(width);
  if (name == "fir8") return fir8(width);
  if (name == "dct4") return dct4(width);
  throw Error("unknown benchmark: '" + name + "'");
}

}  // namespace mcrtl::suite
