#include "util/subprocess.hpp"

#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace mcrtl::proc {

#ifndef _WIN32

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return std::string();
  buf[n] = '\0';
  return std::string(buf);
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  pid_ = std::exchange(other.pid_, -1);
  return *this;
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv,
                             bool quiet) {
  if (argv.empty()) throw Error("Subprocess::spawn: empty argv");
  // Build the exec vector before forking — no allocation is allowed in the
  // child of a multithreaded parent.
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw Error("fork failed");
  if (pid == 0) {
    // Child: async-signal-safe calls only until execv.
    if (quiet) {
      const int devnull = ::open("/dev/null", O_WRONLY);
      if (devnull >= 0) {
        ::dup2(devnull, STDOUT_FILENO);
        ::dup2(devnull, STDERR_FILENO);
        if (devnull > STDERR_FILENO) ::close(devnull);
      }
    }
    ::execv(cargv[0], cargv.data());
    _exit(127);  // exec failed
  }
  Subprocess p;
  p.pid_ = pid;
  return p;
}

int Subprocess::wait() {
  if (pid_ <= 0) throw Error("Subprocess::wait: no child");
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(static_cast<pid_t>(pid_), &status, 0);
  } while (rc < 0 && errno == EINTR);
  pid_ = -1;
  if (rc < 0) throw Error("waitpid failed");
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

void Subprocess::kill_child(int sig) {
  if (pid_ > 0) ::kill(static_cast<pid_t>(pid_), sig);
}

#else  // _WIN32

std::string self_exe_path() { return std::string(); }
Subprocess::Subprocess(Subprocess&&) noexcept {}
Subprocess& Subprocess::operator=(Subprocess&&) noexcept { return *this; }
Subprocess Subprocess::spawn(const std::vector<std::string>&, bool) {
  throw Error("subprocess spawning is not supported on this platform");
}
int Subprocess::wait() { throw Error("no child"); }
void Subprocess::kill_child(int) {}

#endif

std::vector<int> run_all(const std::vector<std::vector<std::string>>& argvs,
                         bool quiet) {
  std::vector<Subprocess> children;
  children.reserve(argvs.size());
  std::vector<int> codes(argvs.size(), 127);
  for (const auto& argv : argvs) {
    try {
      children.push_back(Subprocess::spawn(argv, quiet));
    } catch (const Error&) {
      children.emplace_back();  // placeholder, stays at exit code 127
    }
  }
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (children[i].running()) codes[i] = children[i].wait();
  }
  return codes;
}

}  // namespace mcrtl::proc
