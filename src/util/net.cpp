#include "util/net.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace mcrtl::net {

#ifndef _WIN32

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

int make_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  return fd;
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

UnixConn::~UnixConn() { close(); }

UnixConn::UnixConn(UnixConn&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_)) {}

UnixConn& UnixConn::operator=(UnixConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
  }
  return *this;
}

UnixConn UnixConn::connect(const std::string& path) {
  const int fd = make_socket();
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("connect to '" + path + "'");
  }
  return UnixConn(fd);
}

void UnixConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

void UnixConn::send_all(const std::string& data) {
  MCRTL_CHECK(fd_ >= 0);
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a process-killing
    // SIGPIPE — the daemon must survive clients vanishing mid-response.
    const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    off += static_cast<std::size_t>(n);
  }
}

bool UnixConn::recv_line(std::string& line, std::size_t max_len) {
  MCRTL_CHECK(fd_ >= 0);
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (line.size() > max_len) {
        throw Error("line exceeds " + std::to_string(max_len) + " bytes");
      }
      return true;
    }
    if (buf_.size() > max_len) {
      // Unterminated flood: stop buffering before it grows without bound.
      throw Error("line exceeds " + std::to_string(max_len) + " bytes");
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw Error("receive timed out");
      }
      throw_errno("recv");
    }
    if (n == 0) {
      if (buf_.empty()) return false;
      throw Error("connection closed mid-line");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string UnixConn::recv_exact(std::size_t n) {
  MCRTL_CHECK(fd_ >= 0);
  std::string out = std::move(buf_);
  buf_.clear();
  if (out.size() > n) {
    buf_ = out.substr(n);
    out.resize(n);
    return out;
  }
  while (out.size() < n) {
    char chunk[4096];
    const std::size_t want = std::min(sizeof(chunk), n - out.size());
    const ssize_t got = ::recv(fd_, chunk, want, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw Error("receive timed out");
      }
      throw_errno("recv");
    }
    if (got == 0) throw Error("connection closed mid-payload");
    out.append(chunk, static_cast<std::size_t>(got));
  }
  return out;
}

void UnixConn::set_recv_timeout(double seconds) {
  MCRTL_CHECK(fd_ >= 0);
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
}

UnixListener::UnixListener(const std::string& path) : path_(path) {
  // A stale socket file from a crashed daemon would make bind() fail with
  // EADDRINUSE even though nobody is listening; remove it first. A *live*
  // daemon is unaffected — its listening fd survives the unlink, but two
  // daemons on one path is caller error this class cannot detect.
  ::unlink(path.c_str());
  fd_ = make_socket();
  const sockaddr_un addr = make_addr(path);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 64) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("bind/listen on '" + path + "'");
  }
}

UnixListener::~UnixListener() { close(); }

void UnixListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
  }
}

UnixConn UnixListener::accept(int timeout_ms) {
  MCRTL_CHECK(fd_ >= 0);
  pollfd p{};
  p.fd = fd_;
  p.events = POLLIN;
  const int rc = ::poll(&p, 1, timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return UnixConn();
    throw_errno("poll");
  }
  if (rc == 0) return UnixConn();
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return UnixConn();
    throw_errno("accept");
  }
  return UnixConn(cfd);
}

#else  // _WIN32: the daemon is POSIX-only; every operation fails cleanly.

UnixConn::~UnixConn() = default;
UnixConn::UnixConn(UnixConn&&) noexcept {}
UnixConn& UnixConn::operator=(UnixConn&&) noexcept { return *this; }
UnixConn UnixConn::connect(const std::string&) {
  throw Error("unix sockets are not supported on this platform");
}
void UnixConn::close() {}
void UnixConn::send_all(const std::string&) {
  throw Error("unix sockets are not supported on this platform");
}
bool UnixConn::recv_line(std::string&, std::size_t) {
  throw Error("unix sockets are not supported on this platform");
}
std::string UnixConn::recv_exact(std::size_t) {
  throw Error("unix sockets are not supported on this platform");
}
void UnixConn::set_recv_timeout(double) {}
UnixListener::UnixListener(const std::string& path) : path_(path) {
  throw Error("unix sockets are not supported on this platform");
}
UnixListener::~UnixListener() = default;
void UnixListener::close() {}
UnixConn UnixListener::accept(int) { return UnixConn(); }

#endif

}  // namespace mcrtl::net
