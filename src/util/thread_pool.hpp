// Work-stealing thread pool for embarrassingly parallel sweeps.
//
// The explorer, the property-test grid and the benchmark sweeps all evaluate
// many independent (configuration → measurement) points; this pool runs them
// concurrently while keeping results deterministic: `parallel_for_index`
// writes into caller-indexed slots and, if several tasks throw, rethrows the
// exception of the *lowest* index — exactly the failure a serial loop would
// have reported first.
//
// Design: one deque per worker. A worker pops its own queue LIFO (cache-warm
// tail) and steals FIFO from the head of a sibling's queue when empty.
// Submissions from outside the pool are distributed round-robin; submissions
// from inside a worker go to that worker's own queue. Workers are
// std::jthread, so destruction drains all queued work, requests stop and
// joins.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <iterator>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/fault_injection.hpp"

namespace mcrtl {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers. 0 workers = a valid pool whose
  /// parallel_for_* helpers run serially inline (the `jobs = 1` fallback
  /// spelled without any thread machinery).
  explicit ThreadPool(unsigned num_threads = default_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue one task. Tasks must not submit to a pool being destroyed.
  void submit(std::function<void()> task);

  /// hardware_concurrency, never 0.
  static unsigned default_concurrency();

  /// CLI/config convention: jobs <= 0 means "auto" (default_concurrency);
  /// explicit requests are clamped to default_concurrency — the pool's
  /// workloads are CPU-bound, so extra workers beyond the cores only add
  /// context-switch overhead.
  static unsigned resolve_jobs(int jobs);

  /// Worker index of the calling thread (any pool), or -1 off-pool. Lets
  /// observers (obs::Span) attribute work to per-worker lanes without a
  /// pool reference.
  static int current_worker_index();

  /// Run fn(0) .. fn(n-1) across the pool and block until all complete.
  /// Order of execution is unspecified; determinism comes from indexing.
  /// If any invocation throws, the exception thrown by the lowest index is
  /// rethrown here after every task has finished (no task is abandoned
  /// mid-flight, so partial results are never silently dropped).
  template <typename Fn>
  void parallel_for_index(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    // Serial fallbacks: no workers, a single item, or a nested call from
    // inside one of this pool's own tasks (blocking a worker on work only
    // it could run would deadlock a size-1 pool).
    if (workers_.empty() || n == 1 || on_worker_thread()) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    struct Join {
      std::atomic<std::size_t> remaining;
      std::mutex m;
      std::condition_variable cv;
      std::exception_ptr error;
      std::size_t error_index;
    };
    auto join = std::make_shared<Join>();
    join->remaining.store(n, std::memory_order_relaxed);
    join->error_index = n;
    for (std::size_t i = 0; i < n; ++i) {
      // fn is captured by reference: the caller blocks below until every
      // task has run, so the reference outlives all uses.
      submit([join, &fn, i] {
        try {
          // Injection site for the pool infrastructure itself: an armed
          // fault fires before fn runs, surfaces through the normal
          // lowest-index rethrow, and leaves fn(i) never executed — which
          // fault-isolating callers (core::explore) detect and re-run
          // inline.
          fault::inject("pool.task");
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lk(join->m);
          if (i < join->error_index) {
            join->error_index = i;
            join->error = std::current_exception();
          }
        }
        if (join->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lk(join->m);
          join->cv.notify_all();
        }
      });
    }
    std::unique_lock<std::mutex> lk(join->m);
    join->cv.wait(lk, [&] {
      return join->remaining.load(std::memory_order_acquire) == 0;
    });
    if (join->error) std::rethrow_exception(join->error);
  }

  /// parallel_for_index over a random-access container: fn(items[i]).
  template <typename Container, typename Fn>
  void parallel_for_each(Container&& items, Fn&& fn) {
    auto first = std::begin(items);
    const auto n =
        static_cast<std::size_t>(std::distance(first, std::end(items)));
    parallel_for_index(n, [&](std::size_t i) { fn(first[i]); });
  }

 private:
  struct Worker {
    std::mutex m;
    std::deque<std::function<void()>> queue;
  };

  void worker_loop(unsigned self, std::stop_token st);
  bool try_pop(unsigned self, std::function<void()>& task);
  bool try_steal(unsigned self, std::function<void()>& task);
  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::jthread> workers_;
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::mutex wake_m_;
  std::condition_variable wake_cv_;
};

}  // namespace mcrtl
