#include "util/rng.hpp"

#include "util/bits.hpp"
#include "util/error.hpp"

namespace mcrtl {

namespace {
// splitmix64 is the recommended seeder for xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : s_) w = splitmix64(s);
  // All-zero state would be a fixed point; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  MCRTL_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::next_bits(unsigned width) {
  return truncate(next(), width);
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  return next_double() < p;
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  MCRTL_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(next_below(span));
}

}  // namespace mcrtl
