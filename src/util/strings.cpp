#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mcrtl {

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool is_identifier(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

std::string sanitize_identifier(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 1);
  for (char c : s) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), 'v');
  }
  return out;
}

std::string format_fixed(double v, int digits) {
  return str_format("%.*f", digits, v);
}

}  // namespace mcrtl
