#include "util/thread_pool.hpp"

#include <algorithm>

namespace mcrtl {
namespace {

// Index of the worker the current thread runs as, or -1 off-pool. Lets
// submit() from inside a task go to the submitting worker's own queue
// (LIFO locality) instead of round-robin.
thread_local int tls_worker_index = -1;
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
  queues_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this, i](std::stop_token st) { worker_loop(i, st); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& w : workers_) w.request_stop();
  {
    std::lock_guard<std::mutex> lk(wake_m_);
    wake_cv_.notify_all();
  }
  // jthread joins on destruction; worker_loop drains every queue first.
}

bool ThreadPool::on_worker_thread() const { return tls_worker_pool == this; }

unsigned ThreadPool::default_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

unsigned ThreadPool::resolve_jobs(int jobs) {
  const unsigned hw = default_concurrency();
  if (jobs <= 0) return hw;
  // Clamp to the core count: every pool workload here is CPU-bound, so
  // workers beyond the cores only add context-switch overhead (the
  // "parallel explorer slower than serial" failure mode on small hosts).
  return std::min(static_cast<unsigned>(jobs), hw);
}

int ThreadPool::current_worker_index() { return tls_worker_index; }

void ThreadPool::submit(std::function<void()> task) {
  if (queues_.empty()) {
    task();  // degenerate pool: run inline
    return;
  }
  std::size_t target;
  if (tls_worker_pool == this && tls_worker_index >= 0) {
    target = static_cast<std::size_t>(tls_worker_index);
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    std::lock_guard<std::mutex> lk(queues_[target]->m);
    queues_[target]->queue.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(wake_m_);
    wake_cv_.notify_one();
  }
}

bool ThreadPool::try_pop(unsigned self, std::function<void()>& task) {
  Worker& w = *queues_[self];
  std::lock_guard<std::mutex> lk(w.m);
  if (w.queue.empty()) return false;
  task = std::move(w.queue.back());  // own queue: LIFO, cache-warm
  w.queue.pop_back();
  return true;
}

bool ThreadPool::try_steal(unsigned self, std::function<void()>& task) {
  const std::size_t n = queues_.size();
  for (std::size_t off = 1; off < n; ++off) {
    Worker& v = *queues_[(self + off) % n];
    std::lock_guard<std::mutex> lk(v.m);
    if (v.queue.empty()) continue;
    task = std::move(v.queue.front());  // victim queue: FIFO, oldest first
    v.queue.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(unsigned self, std::stop_token st) {
  tls_worker_index = static_cast<int>(self);
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task) || try_steal(self, task)) {
      queued_.fetch_sub(1, std::memory_order_acquire);
      task();
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_m_);
    wake_cv_.wait(lk, [&] {
      return st.stop_requested() ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (st.stop_requested() &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;  // stop only once every queued task has been drained
    }
  }
}

}  // namespace mcrtl
