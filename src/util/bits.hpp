// Bit-level utilities used by the datapath simulator and the switching
// activity counters. Datapath words are carried in uint64_t and masked to
// the configured bit-width; toggle counting is Hamming distance between the
// old and new word.
#pragma once

#include <bit>
#include <cstdint>

namespace mcrtl {

/// All-ones mask for a `width`-bit word (width in 1..64).
constexpr std::uint64_t bit_mask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Truncate `v` to `width` bits.
constexpr std::uint64_t truncate(std::uint64_t v, unsigned width) {
  return v & bit_mask(width);
}

/// Number of bit positions that differ between two words — the quantity the
/// transition-counting power model accumulates per net.
constexpr unsigned hamming(std::uint64_t a, std::uint64_t b) {
  return static_cast<unsigned>(std::popcount(a ^ b));
}

/// Sign-extend a `width`-bit word into a signed 64-bit value, for arithmetic
/// interpretation of datapath words.
constexpr std::int64_t to_signed(std::uint64_t v, unsigned width) {
  if (width >= 64) return static_cast<std::int64_t>(v);
  const std::uint64_t sign = std::uint64_t{1} << (width - 1);
  const std::uint64_t x = truncate(v, width);
  return static_cast<std::int64_t>((x ^ sign) - sign);
}

/// Re-encode a signed value as a `width`-bit two's complement word.
constexpr std::uint64_t from_signed(std::int64_t v, unsigned width) {
  return truncate(static_cast<std::uint64_t>(v), width);
}

}  // namespace mcrtl
