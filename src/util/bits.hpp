// Bit-level utilities used by the datapath simulator and the switching
// activity counters. Datapath words are carried in uint64_t and masked to
// the configured bit-width; toggle counting is Hamming distance between the
// old and new word.
#pragma once

#include <bit>
#include <cstdint>

namespace mcrtl {

/// All-ones mask for a `width`-bit word (width in 1..64).
constexpr std::uint64_t bit_mask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Truncate `v` to `width` bits.
constexpr std::uint64_t truncate(std::uint64_t v, unsigned width) {
  return v & bit_mask(width);
}

/// Inline SWAR popcount. `std::popcount` lowers to a `__popcountdi2` libcall
/// on baseline x86-64 builds (no -mpopcnt), and that call in the middle of
/// the simulator's toggle-counting hot path costs more than the count
/// itself; this version always inlines.
constexpr unsigned popcount64(std::uint64_t x) {
  x -= (x >> 1) & 0x5555555555555555ULL;
  x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
  x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
  return static_cast<unsigned>((x * 0x0101010101010101ULL) >> 56);
}

/// Number of bit positions that differ between two words — the quantity the
/// transition-counting power model accumulates per net.
constexpr unsigned hamming(std::uint64_t a, std::uint64_t b) {
  return popcount64(a ^ b);
}

/// Sign-extend a `width`-bit word into a signed 64-bit value, for arithmetic
/// interpretation of datapath words.
constexpr std::int64_t to_signed(std::uint64_t v, unsigned width) {
  if (width >= 64) return static_cast<std::int64_t>(v);
  const std::uint64_t sign = std::uint64_t{1} << (width - 1);
  const std::uint64_t x = truncate(v, width);
  return static_cast<std::int64_t>((x ^ sign) - sign);
}

/// Re-encode a signed value as a `width`-bit two's complement word.
constexpr std::uint64_t from_signed(std::int64_t v, unsigned width) {
  return truncate(static_cast<std::uint64_t>(v), width);
}

}  // namespace mcrtl
