// Bit-level utilities used by the datapath simulator and the switching
// activity counters. Datapath words are carried in uint64_t and masked to
// the configured bit-width; toggle counting is Hamming distance between the
// old and new word.
//
// The second half of this header is the bit-slice toolkit behind the
// simulator's Mode::BitSliced kernel: a `width`-bit signal carrying 64
// independent Monte-Carlo streams is stored as `width` planes, where bit s
// of plane b is bit b of stream s's word. One SWAR operation on the planes
// then advances all 64 streams at once — logic ops are plane-wise, addition
// is a ripple of full-adder planes, and per-stream toggle counts accumulate
// in "vertical" carry-save counters whose planes are themselves bit-sliced.
#pragma once

#include <bit>
#include <cstdint>

namespace mcrtl {

/// All-ones mask for a `width`-bit word (width in 1..64).
constexpr std::uint64_t bit_mask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Truncate `v` to `width` bits.
constexpr std::uint64_t truncate(std::uint64_t v, unsigned width) {
  return v & bit_mask(width);
}

/// Inline SWAR popcount. `std::popcount` lowers to a `__popcountdi2` libcall
/// on baseline x86-64 builds (no -mpopcnt), and that call in the middle of
/// the simulator's toggle-counting hot path costs more than the count
/// itself; this version always inlines.
constexpr unsigned popcount64(std::uint64_t x) {
  x -= (x >> 1) & 0x5555555555555555ULL;
  x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
  x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
  return static_cast<unsigned>((x * 0x0101010101010101ULL) >> 56);
}

/// Number of bit positions that differ between two words — the quantity the
/// transition-counting power model accumulates per net.
constexpr unsigned hamming(std::uint64_t a, std::uint64_t b) {
  return popcount64(a ^ b);
}

/// Sign-extend a `width`-bit word into a signed 64-bit value, for arithmetic
/// interpretation of datapath words.
constexpr std::int64_t to_signed(std::uint64_t v, unsigned width) {
  if (width >= 64) return static_cast<std::int64_t>(v);
  const std::uint64_t sign = std::uint64_t{1} << (width - 1);
  const std::uint64_t x = truncate(v, width);
  return static_cast<std::int64_t>((x ^ sign) - sign);
}

/// Re-encode a signed value as a `width`-bit two's complement word.
constexpr std::uint64_t from_signed(std::int64_t v, unsigned width) {
  return truncate(static_cast<std::uint64_t>(v), width);
}

// ---- bit-slice primitives ---------------------------------------------------
//
// Layout convention: a sliced value is `width` consecutive uint64_t planes;
// bit s of plane b is bit b of lane (stream) s. `transpose64` converts
// between the plane view and the lane view — it is an involution, so the
// same call packs lanes into planes and unpacks planes into lanes.

/// In-place 64x64 bit-matrix transpose (Hacker's Delight 7-3): after the
/// call, bit j of x[i] is the old bit i of x[j]. Self-inverse.
inline void transpose64(std::uint64_t x[64]) {
  // Hacker's Delight 7-3, with the block swap taken between the *high* half
  // of the low row and the *low* half of the high row — HD's original pairs
  // the other halves, which transposes about the anti-diagonal (row i, bit
  // j -> row 63-j, bit 63-i) instead of the main diagonal wanted here.
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((x[k] >> j) ^ x[k | j]) & m;
      x[k] ^= t << j;
      x[k | j] ^= t;
    }
  }
}

/// Broadcast one scalar word into planes: every lane of out[b] is bit b of
/// `value` (the sliced image of a value all streams agree on, e.g. a
/// controller line or constant).
inline void slice_broadcast(std::uint64_t value, unsigned width,
                            std::uint64_t* out) {
  for (unsigned b = 0; b < width; ++b) {
    out[b] = (value >> b) & 1 ? ~std::uint64_t{0} : 0;
  }
}

/// Pack the low `width` bits of `n` lane words into planes; lanes >= n are
/// zero. Equivalent to zero-padding to 64 words and calling transpose64,
/// but costs width x n bit ops instead of a full 64x64 transpose — the
/// right tool when only a few planes are live.
inline void slice_pack(const std::uint64_t* words, std::size_t n,
                       unsigned width, std::uint64_t* out) {
  for (unsigned b = 0; b < width; ++b) {
    std::uint64_t plane = 0;
    for (std::size_t s = 0; s < n; ++s) {
      plane |= ((words[s] >> b) & 1) << s;
    }
    out[b] = plane;
  }
}

/// Gather lane `lane`'s word out of `width` planes.
inline std::uint64_t slice_extract_lane(const std::uint64_t* planes,
                                        unsigned width, unsigned lane) {
  std::uint64_t v = 0;
  for (unsigned b = 0; b < width; ++b) {
    v |= ((planes[b] >> lane) & 1) << b;
  }
  return v;
}

/// Unpack `width` planes into `n` per-lane words — the inverse of
/// slice_pack over the first n lanes.
inline void slice_unpack(const std::uint64_t* planes, unsigned width,
                         std::size_t n, std::uint64_t* out) {
  for (std::size_t s = 0; s < n; ++s) {
    out[s] = slice_extract_lane(planes, width, static_cast<unsigned>(s));
  }
}

/// Sliced ripple-carry addition out = a + b + carry_in (carry_in is a lane
/// mask: lanes with the bit set add 1). Returns the carry-out lane mask.
/// `out` may alias `a` or `b`.
inline std::uint64_t slice_add(const std::uint64_t* a, const std::uint64_t* b,
                               unsigned width, std::uint64_t* out,
                               std::uint64_t carry_in = 0) {
  std::uint64_t carry = carry_in;
  for (unsigned i = 0; i < width; ++i) {
    const std::uint64_t x = a[i], y = b[i];
    out[i] = x ^ y ^ carry;
    carry = (x & y) | (carry & (x ^ y));
  }
  return carry;
}

/// Sliced subtraction out = a - b (two's complement: a + ~b + 1). Returns
/// the carry-out lane mask (set = no borrow).
inline std::uint64_t slice_sub(const std::uint64_t* a, const std::uint64_t* b,
                               unsigned width, std::uint64_t* out) {
  std::uint64_t carry = ~std::uint64_t{0};
  for (unsigned i = 0; i < width; ++i) {
    const std::uint64_t x = a[i], y = ~b[i];
    out[i] = x ^ y ^ carry;
    carry = (x & y) | (carry & (x ^ y));
  }
  return carry;
}

/// Per-lane select: out[b] = mask ? a[b] : b_[b] for every plane. The sliced
/// form of a 2:1 mux whose select already is a lane mask.
inline void slice_mux(std::uint64_t mask, const std::uint64_t* a,
                      const std::uint64_t* b_, unsigned width,
                      std::uint64_t* out) {
  for (unsigned i = 0; i < width; ++i) {
    out[i] = (mask & a[i]) | (~mask & b_[i]);
  }
}

/// Lane mask of a == b.
inline std::uint64_t slice_eq(const std::uint64_t* a, const std::uint64_t* b,
                              unsigned width) {
  std::uint64_t m = ~std::uint64_t{0};
  for (unsigned i = 0; i < width; ++i) m &= ~(a[i] ^ b[i]);
  return m;
}

/// Lane mask of sliced value == scalar constant `c`.
inline std::uint64_t slice_eq_const(const std::uint64_t* a, unsigned width,
                                    std::uint64_t c) {
  std::uint64_t m = ~std::uint64_t{0};
  for (unsigned i = 0; i < width; ++i) {
    m &= (c >> i) & 1 ? a[i] : ~a[i];
  }
  return m;
}

/// Lane mask of signed a < b over `width`-bit two's complement words.
/// If the sign bits differ the negative operand is smaller; otherwise the
/// subtraction cannot overflow and the difference's sign bit decides.
inline std::uint64_t slice_lt_signed(const std::uint64_t* a,
                                     const std::uint64_t* b, unsigned width) {
  std::uint64_t carry = ~std::uint64_t{0};
  std::uint64_t diff_sign = 0;
  for (unsigned i = 0; i < width; ++i) {
    const std::uint64_t x = a[i], y = ~b[i];
    diff_sign = x ^ y ^ carry;
    carry = (x & y) | (carry & (x ^ y));
  }
  const std::uint64_t sa = a[width - 1], sb = b[width - 1];
  return (sa & ~sb) | (~(sa ^ sb) & diff_sign);
}

/// Compress `width` 1-bit lane masks into the bit-sliced binary sum per
/// lane: after the call, out[0..*out_planes) are the planes of a per-lane
/// integer in 0..width (the number of input masks with that lane set) —
/// a carry-save population count across planes. Returns the plane count
/// (at most 7 for width <= 64). `out` needs room for 7 planes.
inline unsigned slice_popcount_planes(const std::uint64_t* masks,
                                      unsigned width, std::uint64_t* out) {
  unsigned planes = 0;
  for (unsigned i = 0; i < width; ++i) {
    std::uint64_t carry = masks[i];
    for (unsigned p = 0; p < planes && carry != 0; ++p) {
      const std::uint64_t s = out[p] ^ carry;
      carry &= out[p];
      out[p] = s;
    }
    if (carry != 0) out[planes++] = carry;
  }
  return planes;
}

/// Add a bit-sliced per-lane value (`val`, `val_planes` planes) into a
/// vertical per-lane counter of `counter_planes` planes. Returns false on
/// overflow (a carry out of the top plane in any lane).
inline bool slice_counter_add(std::uint64_t* counter, unsigned counter_planes,
                              const std::uint64_t* val, unsigned val_planes) {
  std::uint64_t carry = 0;
  for (unsigned p = 0; p < counter_planes; ++p) {
    const std::uint64_t add = p < val_planes ? val[p] : 0;
    const std::uint64_t x = counter[p];
    counter[p] = x ^ add ^ carry;
    carry = (x & add) | (carry & (x ^ add));
    if (p >= val_planes && carry == 0) return true;
  }
  return carry == 0;
}

}  // namespace mcrtl
