// Minimal Unix-domain stream-socket helpers.
//
// The sweep-serving daemon (core/serve.hpp) speaks a line-oriented protocol
// over a local socket; these wrappers are the only place raw socket fds are
// handled. Deliberately tiny: bind/listen/accept with a poll timeout on the
// server side, connect/send/recv with receive timeouts on both sides, and
// bounded line reads so an oversized or never-terminated request cannot
// pin a handler thread or grow memory without limit.
//
// POSIX-only (the daemon is a local-host feature); on _WIN32 the header
// still compiles but every operation fails with mcrtl::Error.
#pragma once

#include <cstddef>
#include <string>

#include "util/error.hpp"

namespace mcrtl::net {

/// A connected stream socket (one end of an accepted or dialed connection).
/// Move-only; the destructor closes the fd.
class UnixConn {
 public:
  UnixConn() = default;
  explicit UnixConn(int fd) : fd_(fd) {}
  ~UnixConn();
  UnixConn(UnixConn&& other) noexcept;
  UnixConn& operator=(UnixConn&& other) noexcept;
  UnixConn(const UnixConn&) = delete;
  UnixConn& operator=(const UnixConn&) = delete;

  /// Dial the Unix socket at `path`. Throws mcrtl::Error on failure.
  static UnixConn connect(const std::string& path);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Send all of `data` (retrying short writes). Throws on error.
  void send_all(const std::string& data);

  /// Read one '\n'-terminated line (the newline is consumed, not returned).
  /// Returns false on a clean EOF before any byte. Throws mcrtl::Error on a
  /// receive timeout, an I/O error, or when the line exceeds `max_len`
  /// bytes — the caller must treat that connection as poisoned.
  bool recv_line(std::string& line, std::size_t max_len);

  /// Read exactly `n` bytes. Throws on EOF, timeout or error.
  std::string recv_exact(std::size_t n);

  /// Receive timeout for subsequent reads (0 = block forever).
  void set_recv_timeout(double seconds);

  void close();

 private:
  int fd_ = -1;
  std::string buf_;  ///< bytes read past the last returned line
};

/// A listening Unix socket. Binds at construction (unlinking a stale socket
/// file first) and unlinks the path again on destruction.
class UnixListener {
 public:
  explicit UnixListener(const std::string& path);
  ~UnixListener();
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Wait up to `timeout_ms` for a connection. Returns an invalid conn on
  /// timeout; throws mcrtl::Error on a socket error.
  UnixConn accept(int timeout_ms);

  const std::string& path() const { return path_; }
  void close();

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace mcrtl::net
