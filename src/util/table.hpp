// Plain-text table rendering for benchmark harness output.
//
// Every bench binary reproduces one of the paper's tables; this helper keeps
// their formatting identical (aligned columns, header rule, optional title).
#pragma once

#include <string>
#include <vector>

namespace mcrtl {

/// Column alignment for TextTable.
enum class Align { Left, Right };

/// A minimal monospace table: set a header, append rows of strings, render.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header,
                     std::vector<Align> aligns = {});

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with single-space-padded, '|'-separated aligned columns and a
  /// dashed rule under the header.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcrtl
