#include "util/fault_injection.hpp"

#include <cstdlib>

namespace mcrtl::fault {

namespace {

std::atomic<bool> g_enabled{false};

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Injector& Injector::instance() {
  static Injector inj;
  return inj;
}

const std::vector<const char*>& Injector::known_sites() {
  // One entry per fault::inject() call site in the library. Keep in sync —
  // tests/test_fault_injection.cpp asserts each is reachable.
  static const std::vector<const char*> sites{
      "alloc.integrated",  // core/integrated.cpp allocate_integrated
      "alloc.split",       // core/split.cpp allocate_split
      "rtl.build",         // rtl/builder.cpp build_design
      "sim.run",           // sim/simulator.cpp Simulator::run
      "journal.load",      // core/checkpoint.cpp CheckpointJournal::load
      "journal.append",    // core/checkpoint.cpp CheckpointJournal::append
      "pool.task",         // util/thread_pool.hpp parallel_for_index task
      "explore.point",     // core/explorer.cpp, detail = configuration label
      "journal.merge",     // core/shard.cpp per journal, detail = path
      "serve.request",     // core/serve.cpp parse_request, detail = line
  };
  return sites;
}

void Injector::arm(const std::string& site, ArmSpec spec) {
  std::lock_guard<std::mutex> lk(m_);
  SiteState& st = state_[site];
  st.rng = Rng(spec.seed ^ fnv1a64(site));
  st.spec = std::move(spec);
}

void Injector::disarm(const std::string& site) {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = state_.find(site);
  if (it != state_.end()) it->second.spec.reset();
}

void Injector::reset() {
  std::lock_guard<std::mutex> lk(m_);
  state_.clear();
}

std::uint64_t Injector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = state_.find(site);
  return it == state_.end() ? 0 : it->second.hits;
}

std::vector<std::pair<std::string, std::uint64_t>> Injector::sites() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(state_.size());
  for (const auto& [name, st] : state_) {
    // An armed-but-never-hit site is staged configuration, not an
    // observation: it must not break the "disabled run leaves the registry
    // empty" contract.
    if (st.hits > 0) out.emplace_back(name, st.hits);
  }
  return out;
}

void Injector::on_site(const char* site, const std::string& detail) {
  std::uint64_t hit;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lk(m_);
    SiteState& st = state_[site];
    hit = ++st.hits;
    if (st.spec) {
      const ArmSpec& spec = *st.spec;
      const bool matches =
          spec.match.empty() || detail.find(spec.match) != std::string::npos;
      if (matches) {
        // FirstK thresholds on *matching* hits, so a match filter selects
        // which occurrences can fail, not just whether any do.
        const std::uint64_t matching = ++st.matching_hits;
        switch (spec.mode) {
          case ArmSpec::Mode::Observe: break;
          case ArmSpec::Mode::Always: fail = true; break;
          case ArmSpec::Mode::FirstK: fail = matching <= spec.k; break;
          case ArmSpec::Mode::Probability:
            fail = st.rng.next_bool(spec.probability);
            break;
        }
      }
    }
  }
  if (fail) throw InjectedFault(site, hit);
}

bool arm_from_spec(const std::string& spec) {
  // site:mode[:arg[:seed]][:match=SUB]
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t colon = spec.find(':', pos);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(pos));
      break;
    }
    parts.push_back(spec.substr(pos, colon - pos));
    pos = colon + 1;
  }
  if (parts.size() < 2 || parts[0].empty()) return false;

  ArmSpec arm;
  if (!parts.empty() && parts.back().rfind("match=", 0) == 0) {
    arm.match = parts.back().substr(6);
    parts.pop_back();
    if (parts.size() < 2) return false;
  }
  const std::string& site = parts[0];
  bool known = false;
  for (const char* s : Injector::known_sites()) known = known || site == s;
  if (!known) return false;

  const std::string& mode = parts[1];
  if (mode == "observe" && parts.size() == 2) {
    arm.mode = ArmSpec::Mode::Observe;
  } else if (mode == "always" && parts.size() == 2) {
    arm.mode = ArmSpec::Mode::Always;
  } else if (mode == "first" && parts.size() == 3) {
    arm.mode = ArmSpec::Mode::FirstK;
    arm.k = std::strtoull(parts[2].c_str(), nullptr, 10);
    if (arm.k == 0) return false;
  } else if (mode == "p" && (parts.size() == 3 || parts.size() == 4)) {
    arm.mode = ArmSpec::Mode::Probability;
    arm.probability = std::strtod(parts[2].c_str(), nullptr);
    if (arm.probability < 0.0 || arm.probability > 1.0) return false;
    if (parts.size() == 4) {
      arm.seed = std::strtoull(parts[3].c_str(), nullptr, 10);
    }
  } else {
    return false;
  }
  Injector::instance().arm(site, std::move(arm));
  return true;
}

}  // namespace mcrtl::fault
