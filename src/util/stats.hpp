// Order statistics of repeated wall-clock measurements.
//
// The benches used to report best-of-N, which hides variance entirely and
// drifts optimistic as N grows. The replacement ships the whole shape of
// the sample: median (the headline number and the one perf floors check —
// robust to one-sided scheduler noise, unlike the min), tail percentiles
// and the sample stddev. Percentiles are nearest-rank on the sorted
// samples — exact for the small rep counts benches use, no interpolation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace mcrtl {

struct RunStats {
  std::size_t n = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;  ///< sample standard deviation (n-1); 0 when n < 2
  double pct50 = 0;
  double pct90 = 0;
  double pct99 = 0;

  /// Nearest-rank percentile of the (sorted) sample, q in (0, 1].
  static double percentile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    return sorted[(rank == 0 ? 1 : rank) - 1];
  }

  static RunStats from_samples(std::vector<double> xs) {
    RunStats s;
    s.n = xs.size();
    if (xs.empty()) return s;
    std::sort(xs.begin(), xs.end());
    s.min = xs.front();
    s.max = xs.back();
    double sum = 0;
    for (double x : xs) sum += x;
    s.mean = sum / static_cast<double>(s.n);
    if (s.n > 1) {
      double sq = 0;
      for (double x : xs) sq += (x - s.mean) * (x - s.mean);
      s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
    }
    s.pct50 = percentile(xs, 0.50);
    s.pct90 = percentile(xs, 0.90);
    s.pct99 = percentile(xs, 0.99);
    return s;
  }
};

}  // namespace mcrtl
