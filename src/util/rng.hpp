// Deterministic pseudo-random number generation.
//
// The power methodology of the paper averages node transition counts over a
// long stream of random input patterns. For reproducible tables the stream
// must be identical across runs and platforms, so we carry our own
// xoshiro256** implementation instead of relying on std::mt19937's
// distribution non-determinism across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

namespace mcrtl {

/// xoshiro256** 1.0 — public-domain algorithm by Blackman & Vigna.
/// Deterministic across platforms for a given seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound) (bound > 0).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform `width`-bit word.
  std::uint64_t next_bits(unsigned width);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with probability p of true.
  bool next_bool(double p = 0.5);

  /// Uniform int in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace mcrtl
