#include "util/table.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mcrtl {

TextTable::TextTable(std::vector<std::string> header, std::vector<Align> aligns)
    : header_(std::move(header)), aligns_(std::move(aligns)) {
  MCRTL_CHECK(!header_.empty());
  if (aligns_.empty()) {
    aligns_.assign(header_.size(), Align::Right);
    aligns_[0] = Align::Left;  // first column is usually the design name
  }
  MCRTL_CHECK(aligns_.size() == header_.size());
}

void TextTable::add_row(std::vector<std::string> row) {
  MCRTL_CHECK_MSG(row.size() == header_.size(),
                  "row arity " << row.size() << " != header arity " << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += " | ";
      const std::size_t pad = width[c] - row[c].size();
      if (aligns_[c] == Align::Right) out.append(pad, ' ');
      out += row[c];
      if (aligns_[c] == Align::Left && c + 1 != row.size()) out.append(pad, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(header_, out);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < width.size(); ++c) rule += width[c] + (c ? 3 : 0);
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace mcrtl
