// Error reporting helpers.
//
// MCRTL reports unrecoverable misuse (malformed IR, violated preconditions)
// via exceptions derived from `mcrtl::Error`; recoverable conditions are
// reported through return values. The MCRTL_CHECK macro is used for
// invariants that guard against internal logic errors: unlike `assert` it is
// active in all build types, because a silently corrupted netlist would
// invalidate every downstream power number.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mcrtl {

/// Base class of all exceptions thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an IR structure fails validation (dangling IDs, width
/// mismatches, cyclic data dependencies, ...).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what) : Error(what) {}
};

/// Thrown when a synthesis step cannot satisfy its constraints.
class SynthesisError : public Error {
 public:
  explicit SynthesisError(const std::string& what) : Error(what) {}
};

/// Thrown when a cooperative deadline expires (e.g. the explorer's
/// per-point --point-timeout, checked inside the simulation loop). A
/// deadline expiry is retryable/quarantinable like any other point failure.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "MCRTL_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace mcrtl

#define MCRTL_CHECK(expr)                                                \
  do {                                                                   \
    if (!(expr)) ::mcrtl::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MCRTL_CHECK_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream mcrtl_os_;                                      \
      mcrtl_os_ << msg;                                                  \
      ::mcrtl::detail::check_failed(#expr, __FILE__, __LINE__, mcrtl_os_.str()); \
    }                                                                    \
  } while (0)
