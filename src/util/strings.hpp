// Small string helpers shared by report printers and the VHDL emitter.
#pragma once

#include <string>
#include <vector>

namespace mcrtl {

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Join `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Lower-case ASCII copy.
std::string to_lower(std::string s);

/// True if `s` is a valid VHDL/C-style identifier.
bool is_identifier(const std::string& s);

/// Mangle an arbitrary name into a safe identifier (non-alnum -> '_',
/// leading digit prefixed).
std::string sanitize_identifier(const std::string& s);

/// Format a double with `digits` significant decimals, trimming trailing
/// zeros ("3.50" stays "3.50" when digits==2; used for table output).
std::string format_fixed(double v, int digits);

}  // namespace mcrtl
