// Child-process helpers for multi-process sweeps.
//
// The sharded explorer and the sweep-serving daemon fan work out to real
// worker *processes* (the host is 1-core-per-thread bound — see
// BENCH_explorer.json — so the next scaling axis is processes/machines).
// This is the one place fork/exec lives: spawn an argv vector with
// stdout/stderr optionally discarded, wait for exit, or kill. fork() is
// followed immediately by execv (only async-signal-safe calls in between),
// which is the only fork discipline that is safe from a multithreaded
// parent such as the daemon's connection handlers.
//
// POSIX-only; on _WIN32 spawn() throws.
#pragma once

#include <string>
#include <vector>

#include "util/error.hpp"

namespace mcrtl::proc {

/// Absolute path of the running executable (/proc/self/exe on Linux).
/// Empty when the platform cannot tell — callers must handle that.
std::string self_exe_path();

/// A spawned child process. Move-only; the destructor does NOT kill or
/// reap the child — call wait() (or kill() then wait()) explicitly, or the
/// child is deliberately left running (daemon workers own their children).
class Subprocess {
 public:
  Subprocess() = default;
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// Spawn `argv` (argv[0] is the executable path). With `quiet`, the
  /// child's stdout/stderr go to /dev/null. Throws mcrtl::Error if the
  /// fork fails or argv is empty; an exec failure surfaces as exit code
  /// 127 from wait().
  static Subprocess spawn(const std::vector<std::string>& argv,
                          bool quiet = false);

  bool running() const { return pid_ > 0; }
  long pid() const { return pid_; }

  /// Block until the child exits. Returns its exit code, or 128+signal
  /// when it died on a signal. Throws if there is no child to wait for.
  int wait();

  /// Send `sig` (e.g. SIGKILL) to the child. No-op when already reaped.
  void kill_child(int sig);

 private:
  long pid_ = -1;
};

/// Spawn every argv in `argvs` concurrently and wait for all of them.
/// Returns the exit codes in order. Children that cannot be spawned count
/// as exit code 127.
std::vector<int> run_all(const std::vector<std::vector<std::string>>& argvs,
                         bool quiet = false);

}  // namespace mcrtl::proc
