// Deterministic fault injection for robustness testing.
//
// The explorer's crash-safety machinery (checkpoint journal, per-point
// retry, quarantine — see core/explorer.hpp) is only trustworthy if its
// failure paths are actually exercised, so the pipeline carries named
// *injection sites* at the places real faults occur: allocation, RTL
// construction, simulation, journal I/O and the thread pool. A site is one
// call — `fault::inject("rtl.build")` — that the Injector can arm to throw
// an `InjectedFault` on a deterministic schedule (always, the first K hits,
// or a seeded per-site Bernoulli draw), optionally filtered to hits whose
// detail string matches a substring (e.g. one configuration label of an
// exploration sweep).
//
// Zero-cost contract (mirrors obs::): injection is disabled by default and
// a disabled site is exactly one relaxed atomic load — no registry entry is
// created, no mutex taken, so a disabled run leaves the Injector's site
// table completely empty (asserted by tests/test_fault_injection.cpp).
//
// Determinism: Always/FirstK decide from the site's hit counter alone, so
// the *number* of failures is reproducible for any thread count (which
// worker observes them may vary). Probability mode draws from a per-site
// xoshiro stream seeded by (spec.seed, site name), reproducible for serial
// runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mcrtl::fault {

/// Thrown by an armed site. Derives from mcrtl::Error so it flows through
/// the same retry/quarantine handling as a genuine pipeline failure.
class InjectedFault : public Error {
 public:
  InjectedFault(const std::string& site, std::uint64_t hit)
      : Error("injected fault at site '" + site + "' (hit " +
              std::to_string(hit) + ")"),
        site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Is injection on? One relaxed atomic load; the gate every site checks
/// first.
bool enabled();

/// Turn injection on/off process-wide (tests, CLI --fault-inject).
void set_enabled(bool on);

/// How an armed site decides whether a hit fails.
struct ArmSpec {
  enum class Mode {
    Observe,      ///< count hits, never fail (reachability probes)
    Always,       ///< every matching hit fails
    FirstK,       ///< matching hits 1..k fail, later ones succeed
    Probability,  ///< each matching hit fails with probability p
  };
  Mode mode = Mode::Observe;
  std::uint64_t k = 0;       ///< FirstK threshold
  double probability = 0.0;  ///< Probability draw
  std::uint64_t seed = 1;    ///< Probability stream seed (combined with site)
  /// If non-empty, only hits whose detail string contains this substring
  /// can fail (all hits are still counted).
  std::string match;
};

/// Process-global injection registry. All members are thread-safe.
class Injector {
 public:
  static Injector& instance();

  /// The compiled-in site list (for reachability tests and CLI validation).
  static const std::vector<const char*>& known_sites();

  /// Arm (or re-arm) a site. Arming is independent of enabled(): specs can
  /// be staged while injection is off.
  void arm(const std::string& site, ArmSpec spec);
  void disarm(const std::string& site);
  /// Disarm every site and clear all hit counters (does not change
  /// enabled()).
  void reset();

  /// Hits observed at `site` since the last reset() (0 if never hit).
  std::uint64_t hits(const std::string& site) const;
  /// Every site observed (hit at least once) since the last reset(), with
  /// hit counts; armed-but-unhit sites are not listed. Empty after a run
  /// with injection disabled — the zero-cost contract.
  std::vector<std::pair<std::string, std::uint64_t>> sites() const;

  /// Instrumentation entry point (use the inject() shorthands): counts the
  /// hit and throws InjectedFault if the armed spec says so.
  void on_site(const char* site, const std::string& detail);

 private:
  Injector() = default;

  struct SiteState {
    std::uint64_t hits = 0;
    std::uint64_t matching_hits = 0;  ///< hits passing the spec's match filter
    std::optional<ArmSpec> spec;
    Rng rng{1};  ///< Probability stream; re-seeded when armed
  };
  mutable std::mutex m_;
  std::map<std::string, SiteState> state_;
};

/// Arm a site from a CLI spec string:
///   "site:always"  "site:first:K"  "site:p:0.25[:seed]"  "site:observe"
/// each optionally suffixed with ":match=SUBSTRING". Returns false on a
/// malformed spec or an unknown site.
bool arm_from_spec(const std::string& spec);

/// A site. Disabled cost: one relaxed atomic load.
inline void inject(const char* site) {
  if (!enabled()) return;
  Injector::instance().on_site(site, std::string());
}
/// A site with a per-hit detail string (used by match filters).
inline void inject(const char* site, const std::string& detail) {
  if (!enabled()) return;
  Injector::instance().on_site(site, detail);
}

}  // namespace mcrtl::fault
