// Strong, type-safe integer identifiers.
//
// Every IR object in MCRTL (DFG node, value, register, ALU, net, component,
// clock phase, ...) is referred to by a small integer index into its owning
// container. Raw `int` indices are easy to mix up across containers, so each
// class of object gets its own incompatible ID type instantiated from the
// `StrongId` template below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace mcrtl {

/// A strongly typed wrapper around a 32-bit index.
///
/// `Tag` is an empty struct that distinguishes otherwise identical ID types
/// at compile time. The sentinel `invalid()` value is all-ones; a
/// default-constructed StrongId is invalid.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type v) : value_(v) {}

  /// The reserved "no object" sentinel.
  static constexpr StrongId invalid() {
    return StrongId(std::numeric_limits<underlying_type>::max());
  }

  constexpr bool valid() const { return value_ != invalid().value_; }
  constexpr underlying_type value() const { return value_; }
  /// Index form for container subscripting.
  constexpr std::size_t index() const { return static_cast<std::size_t>(value_); }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

 private:
  underlying_type value_ = std::numeric_limits<underlying_type>::max();
};

}  // namespace mcrtl

namespace std {
template <typename Tag>
struct hash<mcrtl::StrongId<Tag>> {
  size_t operator()(mcrtl::StrongId<Tag> id) const noexcept {
    return std::hash<typename mcrtl::StrongId<Tag>::underlying_type>{}(id.value());
  }
};
}  // namespace std
