// Structural VHDL-93 export of a synthesized design.
//
// The paper's flow produced VHDL for the COMPASS ASIC Synthesizer (§5.1);
// this emitter keeps the flow end-to-end: entities for ALUs, muxes, latches
// and registers, a clock divider generating the n non-overlapping phases
// from the master clock, and a controller process holding the control table
// as constants. The output is self-contained synthesizable-style VHDL
// intended for inspection and external simulation.
#pragma once

#include <string>

#include "rtl/design.hpp"

namespace mcrtl::vhdl {

/// Render `design` as one VHDL file (entity name = netlist name).
std::string emit_vhdl(const rtl::Design& design);

}  // namespace mcrtl::vhdl
