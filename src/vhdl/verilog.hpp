// Structural Verilog-2001 export of a synthesized design — the second HDL
// backend (see emitter.hpp for VHDL). Same structure: step counter, phase
// generation, controller case tables, datapath continuous assignments,
// edge-triggered registers and transparent latches.
#pragma once

#include <string>

#include "rtl/design.hpp"

namespace mcrtl::vhdl {

/// Render `design` as one Verilog file (module name = netlist name).
std::string emit_verilog(const rtl::Design& design);

}  // namespace mcrtl::vhdl
