#include "obs/obs.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace mcrtl::obs {

namespace {

std::atomic<bool> g_enabled{false};

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string lane_name(int lane) {
  return lane == 0 ? std::string("main") : str_format("worker-%d", lane - 1);
}

}  // namespace

int HistogramStats::bucket_of(double value) {
  if (!(value >= 1.0)) return 0;  // < 1 and NaN both land in bucket 0
  const int b = std::ilogb(value) + 1;
  return b > 63 ? 63 : b;
}

double HistogramStats::pct(double q) const {
  if (count == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t cum = 0;
  for (int b = 0; b < 64; ++b) {
    cum += buckets[static_cast<std::size_t>(b)];
    if (cum >= rank) {
      const double edge = std::ldexp(1.0, b);  // upper edge: bucket 0 -> 1
      return std::min(std::max(edge, min), max);
    }
  }
  return max;
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Registry::Registry() : epoch_(std::chrono::steady_clock::now()) {}

Registry& Registry::instance() {
  static Registry reg;
  return reg;
}

std::uint64_t Registry::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Registry::count(const std::string& name, std::uint64_t n) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(m_);
  counters_[name] += n;
}

void Registry::set_gauge(const std::string& name, double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(m_);
  gauges_[name] = value;
}

namespace {
void fold_sample(HistogramStats& h, double value) {
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  }
  h.min = std::min(h.min, value);
  h.max = std::max(h.max, value);
  ++h.count;
  h.sum += value;
  ++h.buckets[static_cast<std::size_t>(HistogramStats::bucket_of(value))];
}
}  // namespace

void Registry::observe(const std::string& name, double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(m_);
  auto& h = histograms_[name];
  if (h.name.empty()) h.name = name;
  fold_sample(h, value);
}

void Registry::observe_many(const std::string& name,
                            const std::vector<double>& values) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(m_);
  auto& h = histograms_[name];
  if (h.name.empty()) h.name = name;
  for (double v : values) fold_sample(h, v);
}

void Registry::counter_track(const std::string& name,
                             std::vector<TrackSample> samples) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(m_);
  auto& track = tracks_[name];
  track.insert(track.end(), samples.begin(), samples.end());
}

void Registry::record_span(const SpanRecord& rec) {
  std::lock_guard<std::mutex> lk(m_);
  spans_.push_back(rec);
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard<std::mutex> lk(m_);
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::lock_guard<std::mutex> lk(m_);
  return {gauges_.begin(), gauges_.end()};
}

std::vector<HistogramStats> Registry::histograms() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<HistogramStats> out;
  out.reserve(histograms_.size());
  for (const auto& [_, h] : histograms_) out.push_back(h);
  return out;
}

std::vector<CounterTrack> Registry::counter_tracks() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<CounterTrack> out;
  out.reserve(tracks_.size());
  for (const auto& [name, samples] : tracks_) out.push_back({name, samples});
  return out;
}

std::vector<SpanRecord> Registry::spans() const {
  std::lock_guard<std::mutex> lk(m_);
  return spans_;
}

std::size_t Registry::num_spans() const {
  std::lock_guard<std::mutex> lk(m_);
  return spans_.size();
}

std::vector<SpanStats> Registry::span_stats() const {
  std::map<std::string, SpanStats> by_name;
  for (const auto& s : spans()) {
    auto& st = by_name[s.name];
    if (st.count == 0) {
      st.name = s.name;
      st.min_ms = ms(s.dur_ns);
      st.max_ms = ms(s.dur_ns);
    }
    ++st.count;
    st.total_ms += ms(s.dur_ns);
    st.min_ms = std::min(st.min_ms, ms(s.dur_ns));
    st.max_ms = std::max(st.max_ms, ms(s.dur_ns));
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (auto& [_, st] : by_name) out.push_back(std::move(st));
  // Heaviest first: the table doubles as a profile.
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.total_ms > b.total_ms;
  });
  return out;
}

std::vector<LaneStats> Registry::lane_stats() const {
  std::map<int, LaneStats> by_lane;
  for (const auto& s : spans()) {
    auto& st = by_lane[s.lane];
    st.lane = s.lane;
    ++st.spans;
    st.busy_ms += ms(s.dur_ns);
  }
  std::vector<LaneStats> out;
  out.reserve(by_lane.size());
  for (auto& [_, st] : by_lane) out.push_back(st);
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(m_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  tracks_.clear();
  spans_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

std::string Registry::summary() const {
  std::string out;
  const auto stats = span_stats();
  if (!stats.empty()) {
    TextTable t({"span", "count", "total[ms]", "mean[ms]", "min[ms]", "max[ms]"},
                {Align::Left, Align::Right, Align::Right, Align::Right,
                 Align::Right, Align::Right});
    for (const auto& s : stats) {
      t.add_row({s.name, std::to_string(s.count), format_fixed(s.total_ms, 3),
                 format_fixed(s.total_ms / static_cast<double>(s.count), 3),
                 format_fixed(s.min_ms, 3), format_fixed(s.max_ms, 3)});
    }
    out += t.render();
  }
  const auto lanes = lane_stats();
  if (lanes.size() > 1) {
    TextTable t({"lane", "spans", "busy[ms]"},
                {Align::Left, Align::Right, Align::Right});
    for (const auto& l : lanes) {
      t.add_row({lane_name(l.lane), std::to_string(l.spans),
                 format_fixed(l.busy_ms, 3)});
    }
    out += "\n" + t.render();
  }
  const auto hs = histograms();
  if (!hs.empty()) {
    TextTable t({"histogram", "count", "mean", "pct50", "pct90", "pct99",
                 "max"},
                {Align::Left, Align::Right, Align::Right, Align::Right,
                 Align::Right, Align::Right, Align::Right});
    for (const auto& h : hs) {
      t.add_row({h.name, std::to_string(h.count), format_fixed(h.mean(), 3),
                 format_fixed(h.pct(0.50), 3), format_fixed(h.pct(0.90), 3),
                 format_fixed(h.pct(0.99), 3), format_fixed(h.max, 3)});
    }
    out += "\n" + t.render();
  }
  const auto cs = counters();
  const auto gs = gauges();
  if (!cs.empty() || !gs.empty()) {
    TextTable t({"metric", "value"}, {Align::Left, Align::Right});
    for (const auto& [name, v] : cs) t.add_row({name, std::to_string(v)});
    for (const auto& [name, v] : gs) t.add_row({name, format_fixed(v, 3)});
    out += "\n" + t.render();
  }
  return out;
}

std::string Registry::chrome_trace_json() const {
  auto recs = spans();
  // Stable presentation order (records arrive in whatever order workers
  // finished): by start time, then lane.
  std::stable_sort(recs.begin(), recs.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     return a.lane < b.lane;
                   });
  int max_lane = 0;
  for (const auto& r : recs) max_lane = std::max(max_lane, r.lane);

  std::vector<std::string> events;
  for (int lane = 0; lane <= max_lane; ++lane) {
    events.push_back(str_format(
        "{\"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"name\": \"thread_name\", "
        "\"args\": {\"name\": \"%s\"}}",
        lane, lane_name(lane).c_str()));
  }
  for (const auto& r : recs) {
    events.push_back(str_format(
        "{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f, "
        "\"dur\": %.3f, \"cat\": \"mcrtl\", \"name\": \"%s\"}",
        r.lane, static_cast<double>(r.start_ns) / 1e3,
        static_cast<double>(r.dur_ns) / 1e3, json_escape(r.name).c_str()));
  }
  // Counter tracks live under their own process: their timestamps are
  // simulated step indices, not host time, and a separate pid keeps the two
  // axes from interleaving in the viewer.
  const auto tracks = counter_tracks();
  if (!tracks.empty()) {
    events.push_back(
        "{\"ph\": \"M\", \"pid\": 2, \"tid\": 0, \"name\": \"process_name\", "
        "\"args\": {\"name\": \"simulated time\"}}");
    for (const auto& track : tracks) {
      for (const auto& [ts, value] : track.samples) {
        events.push_back(str_format(
            "{\"ph\": \"C\", \"pid\": 2, \"tid\": 0, \"ts\": %.3f, "
            "\"cat\": \"mcrtl\", \"name\": \"%s\", \"args\": {\"value\": "
            "%.6f}}",
            ts, json_escape(track.name).c_str(), value));
      }
    }
  }

  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out += events[i];
    out += i + 1 < events.size() ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

std::string Registry::metrics_json() const {
  std::string out = "{\n  \"counters\": {";
  const auto cs = counters();
  for (std::size_t i = 0; i < cs.size(); ++i) {
    out += str_format("%s\n    \"%s\": %llu", i ? "," : "",
                      json_escape(cs[i].first).c_str(),
                      static_cast<unsigned long long>(cs[i].second));
  }
  out += cs.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  const auto gs = gauges();
  for (std::size_t i = 0; i < gs.size(); ++i) {
    out += str_format("%s\n    \"%s\": %.6f", i ? "," : "",
                      json_escape(gs[i].first).c_str(), gs[i].second);
  }
  out += gs.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  const auto hs = histograms();
  for (std::size_t i = 0; i < hs.size(); ++i) {
    const auto& h = hs[i];
    out += str_format(
        "%s\n    \"%s\": {\"count\": %llu, \"mean\": %.6f, \"min\": %.6f, "
        "\"pct50\": %.6f, \"pct90\": %.6f, \"pct99\": %.6f, \"max\": %.6f}",
        i ? "," : "", json_escape(h.name).c_str(),
        static_cast<unsigned long long>(h.count), h.mean(), h.min,
        h.pct(0.50), h.pct(0.90), h.pct(0.99), h.max);
  }
  out += hs.empty() ? "},\n" : "\n  },\n";
  out += "  \"spans\": {";
  const auto stats = span_stats();
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const auto& s = stats[i];
    out += str_format(
        "%s\n    \"%s\": {\"count\": %llu, \"total_ms\": %.6f, "
        "\"mean_ms\": %.6f, \"min_ms\": %.6f, \"max_ms\": %.6f}",
        i ? "," : "", json_escape(s.name).c_str(),
        static_cast<unsigned long long>(s.count), s.total_ms,
        s.total_ms / static_cast<double>(s.count), s.min_ms, s.max_ms);
  }
  out += stats.empty() ? "},\n" : "\n  },\n";
  out += "  \"lanes\": {";
  const auto lanes = lane_stats();
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    out += str_format("%s\n    \"%s\": {\"spans\": %llu, \"busy_ms\": %.6f}",
                      i ? "," : "", lane_name(lanes[i].lane).c_str(),
                      static_cast<unsigned long long>(lanes[i].spans),
                      lanes[i].busy_ms);
  }
  out += lanes.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Span::Span(const char* name) : name_(name) {
  if (!enabled()) return;
  active_ = true;
  start_ns_ = Registry::instance().now_ns();
}

Span::~Span() {
  if (!active_) return;
  SpanRecord rec;
  rec.name = name_;
  rec.start_ns = start_ns_;
  rec.dur_ns = Registry::instance().now_ns() - start_ns_;
  rec.lane = ThreadPool::current_worker_index() + 1;
  Registry::instance().record_span(rec);
}

}  // namespace mcrtl::obs
