// Observability: pipeline-wide tracing and metrics.
//
// The paper's claim is an *activity-shape* claim (one DPM switches per
// master cycle) and the ROADMAP's north star is throughput; both need a
// measurement substrate. This module provides one, with three ingredients:
//
//  * `Span` — a thread-aware RAII timer. Constructing a Span stamps a
//    start time, destroying it records a (name, lane, start, duration)
//    tuple into the global Registry. The lane is the work-stealing pool
//    worker index (`ThreadPool::current_worker_index() + 1`; lane 0 is any
//    off-pool thread), so traces show per-worker utilization directly.
//  * named counters/gauges — monotonic `count()` totals (mux inputs,
//    registers merged by left-edge, transfer variables inserted, nets,
//    toggles, the settle-kernel's `sim.kernel.events_popped` /
//    `sim.kernel.evals_skipped` work-saved pair, ...) and point-in-time
//    `set_gauge()` values (points/sec, lane utilization).
//  * histograms/tracks — log2-bucket distribution sketches (`observe()`,
//    pct50/90/99 for per-step energy and per-point latency tails) and
//    counter tracks (`Registry::counter_track()`, time-stamped value series
//    such as the per-clock-domain power waveforms, rendered as Chrome-trace
//    counter lanes under a separate "simulated time" process).
//  * sinks — a human summary table (`Registry::summary()`, rendered with
//    util::table) and Chrome trace-event JSON
//    (`Registry::chrome_trace_json()`, loadable in chrome://tracing and
//    Perfetto) plus an aggregate metrics JSON (`Registry::metrics_json()`).
//
// Collection is *disabled by default* and the disabled path is deliberately
// no-op-cheap: every instrumentation entry point begins with one relaxed
// atomic load and returns. No `#ifdef`s, no sink objects at call sites.
//
// Determinism: instrumentation only observes (it reads clocks and
// accumulates into side tables); it never feeds back into any algorithm or
// RNG. Synthesis/exploration results are bit-identical with collection on
// or off, for any thread count — asserted by tests/test_obs.cpp and by
// bench_explorer_report on every run.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mcrtl::obs {

/// Is collection on? One relaxed atomic load; the gate every
/// instrumentation site checks first.
bool enabled();

/// Turn collection on/off process-wide. Typically flipped once at startup
/// (CLI `--trace-out` / `--metrics-out` / `--progress`).
void set_enabled(bool on);

/// One completed span. `name` must be a string literal (stored by pointer).
struct SpanRecord {
  const char* name;
  std::uint64_t start_ns;  ///< since Registry epoch (last reset())
  std::uint64_t dur_ns;
  int lane;  ///< 0 = off-pool thread, k >= 1 = pool worker k-1
};

/// Aggregated view of all spans sharing a name.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
};

/// Busy time accumulated per lane (for utilization reports).
struct LaneStats {
  int lane = 0;
  std::uint64_t spans = 0;
  double busy_ms = 0;
};

/// Fixed-footprint distribution sketch: 64 log2-width buckets plus exact
/// count/sum/min/max. Bucket 0 holds values < 1; bucket b >= 1 holds
/// [2^(b-1), 2^b). Percentiles are nearest-rank over the buckets, reported
/// as the containing bucket's upper edge clamped to [min, max] — a <= 2x
/// overestimate by construction, which is the right fidelity for "where is
/// the tail?" questions (per-step energy, per-point latency) at O(1) space
/// per series.
struct HistogramStats {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  std::array<std::uint64_t, 64> buckets{};

  double mean() const { return count ? sum / static_cast<double>(count) : 0; }
  /// Nearest-rank percentile, q in (0, 1]; 0 when empty.
  double pct(double q) const;
  /// Bucket index of a value (see class comment).
  static int bucket_of(double value);
};

/// One sample of a counter track: (timestamp in track units, value).
using TrackSample = std::pair<double, double>;

/// A named counter series rendered as a Chrome-trace counter ("ph":"C")
/// track — e.g. the per-clock-domain power waveforms, timestamped by
/// simulated step rather than host time (they live under their own
/// "simulated time" process in the trace, pid 2).
struct CounterTrack {
  std::string name;
  std::vector<TrackSample> samples;
};

/// Process-wide metric store. All members are thread-safe.
class Registry {
 public:
  static Registry& instance();

  /// Add `n` to the named monotonic counter. No-op while disabled (and no
  /// counter is created, so a disabled run leaves the registry empty).
  void count(const std::string& name, std::uint64_t n = 1);

  /// Set a point-in-time value. No-op while disabled.
  void set_gauge(const std::string& name, double value);

  /// Fold one sample into the named histogram. No-op while disabled (no
  /// histogram is created, so a disabled run leaves the registry empty).
  void observe(const std::string& name, double value);
  /// Batch form of observe(): one lock, many samples.
  void observe_many(const std::string& name, const std::vector<double>& values);

  /// Append samples to the named counter track. No-op while disabled.
  void counter_track(const std::string& name, std::vector<TrackSample> samples);

  /// Record a completed span (called by ~Span; callable directly for
  /// externally timed intervals).
  void record_span(const SpanRecord& rec);

  /// Nanoseconds since the epoch (construction or last reset()).
  std::uint64_t now_ns() const;

  // ---- snapshots ----------------------------------------------------------
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<HistogramStats> histograms() const;
  std::vector<CounterTrack> counter_tracks() const;
  std::vector<SpanRecord> spans() const;
  std::vector<SpanStats> span_stats() const;
  std::vector<LaneStats> lane_stats() const;
  std::size_t num_spans() const;

  /// Drop every record and re-arm the epoch (does not change enabled()).
  void reset();

  // ---- sinks --------------------------------------------------------------
  /// Human-readable span/counter/gauge/lane tables (util::table).
  std::string summary() const;
  /// Chrome trace-event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}
  /// with one lane ("thread") per pool worker plus lane 0 for the main
  /// thread. Load in chrome://tracing or https://ui.perfetto.dev.
  std::string chrome_trace_json() const;
  /// Aggregate JSON: counters, gauges, per-name span stats, per-lane busy
  /// time.
  std::string metrics_json() const;

 private:
  Registry();

  mutable std::mutex m_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramStats> histograms_;
  std::map<std::string, std::vector<TrackSample>> tracks_;
  std::vector<SpanRecord> spans_;
  std::chrono::steady_clock::time_point epoch_;
};

/// Free-function shorthands for the instrumentation call sites.
inline void count(const std::string& name, std::uint64_t n = 1) {
  if (!enabled()) return;
  Registry::instance().count(name, n);
}
inline void set_gauge(const std::string& name, double value) {
  if (!enabled()) return;
  Registry::instance().set_gauge(name, value);
}
inline void observe(const std::string& name, double value) {
  if (!enabled()) return;
  Registry::instance().observe(name, value);
}
inline void observe_many(const std::string& name,
                         const std::vector<double>& values) {
  if (!enabled()) return;
  Registry::instance().observe_many(name, values);
}

/// RAII scoped timer. `name` must outlive the program (use a literal).
/// Inactive (and free of any clock read) while collection is disabled.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace mcrtl::obs
