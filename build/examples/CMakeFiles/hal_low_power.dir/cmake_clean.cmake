file(REMOVE_RECURSE
  "CMakeFiles/hal_low_power.dir/hal_low_power.cpp.o"
  "CMakeFiles/hal_low_power.dir/hal_low_power.cpp.o.d"
  "hal_low_power"
  "hal_low_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_low_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
