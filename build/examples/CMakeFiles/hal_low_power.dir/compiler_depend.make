# Empty compiler generated dependencies file for hal_low_power.
# This may be replaced when dependencies are built.
