# Empty dependencies file for filter_design_space.
# This may be replaced when dependencies are built.
