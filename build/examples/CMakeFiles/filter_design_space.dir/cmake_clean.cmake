file(REMOVE_RECURSE
  "CMakeFiles/filter_design_space.dir/filter_design_space.cpp.o"
  "CMakeFiles/filter_design_space.dir/filter_design_space.cpp.o.d"
  "filter_design_space"
  "filter_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
