# Empty compiler generated dependencies file for dfg_file_flow.
# This may be replaced when dependencies are built.
