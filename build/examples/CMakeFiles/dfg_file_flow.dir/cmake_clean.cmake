file(REMOVE_RECURSE
  "CMakeFiles/dfg_file_flow.dir/dfg_file_flow.cpp.o"
  "CMakeFiles/dfg_file_flow.dir/dfg_file_flow.cpp.o.d"
  "dfg_file_flow"
  "dfg_file_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfg_file_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
