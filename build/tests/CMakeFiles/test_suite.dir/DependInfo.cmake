
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_suite.cpp" "tests/CMakeFiles/test_suite.dir/test_suite.cpp.o" "gcc" "tests/CMakeFiles/test_suite.dir/test_suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcrtl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mcrtl_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcrtl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/mcrtl_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/vhdl/CMakeFiles/mcrtl_vhdl.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/mcrtl_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/suite/CMakeFiles/mcrtl_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/mcrtl_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcrtl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
