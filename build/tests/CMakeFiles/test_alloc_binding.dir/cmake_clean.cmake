file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_binding.dir/test_alloc_binding.cpp.o"
  "CMakeFiles/test_alloc_binding.dir/test_alloc_binding.cpp.o.d"
  "test_alloc_binding"
  "test_alloc_binding.pdb"
  "test_alloc_binding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
