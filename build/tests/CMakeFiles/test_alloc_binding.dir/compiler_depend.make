# Empty compiler generated dependencies file for test_alloc_binding.
# This may be replaced when dependencies are built.
