file(REMOVE_RECURSE
  "CMakeFiles/test_dfg_graph.dir/test_dfg_graph.cpp.o"
  "CMakeFiles/test_dfg_graph.dir/test_dfg_graph.cpp.o.d"
  "test_dfg_graph"
  "test_dfg_graph.pdb"
  "test_dfg_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
