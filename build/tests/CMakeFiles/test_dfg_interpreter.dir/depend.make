# Empty dependencies file for test_dfg_interpreter.
# This may be replaced when dependencies are built.
