file(REMOVE_RECURSE
  "CMakeFiles/test_dfg_interpreter.dir/test_dfg_interpreter.cpp.o"
  "CMakeFiles/test_dfg_interpreter.dir/test_dfg_interpreter.cpp.o.d"
  "test_dfg_interpreter"
  "test_dfg_interpreter.pdb"
  "test_dfg_interpreter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfg_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
