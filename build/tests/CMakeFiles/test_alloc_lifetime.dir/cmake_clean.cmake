file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_lifetime.dir/test_alloc_lifetime.cpp.o"
  "CMakeFiles/test_alloc_lifetime.dir/test_alloc_lifetime.cpp.o.d"
  "test_alloc_lifetime"
  "test_alloc_lifetime.pdb"
  "test_alloc_lifetime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
