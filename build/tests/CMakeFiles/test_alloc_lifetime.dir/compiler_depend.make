# Empty compiler generated dependencies file for test_alloc_lifetime.
# This may be replaced when dependencies are built.
