# Empty dependencies file for test_dfg_schedule.
# This may be replaced when dependencies are built.
