file(REMOVE_RECURSE
  "CMakeFiles/test_dfg_schedule.dir/test_dfg_schedule.cpp.o"
  "CMakeFiles/test_dfg_schedule.dir/test_dfg_schedule.cpp.o.d"
  "test_dfg_schedule"
  "test_dfg_schedule.pdb"
  "test_dfg_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfg_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
