# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_dfg_graph[1]_include.cmake")
include("/root/repo/build/tests/test_dfg_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_dfg_interpreter[1]_include.cmake")
include("/root/repo/build/tests/test_alloc_lifetime[1]_include.cmake")
include("/root/repo/build/tests/test_alloc_binding[1]_include.cmake")
include("/root/repo/build/tests/test_rtl[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_suite[1]_include.cmake")
include("/root/repo/build/tests/test_vhdl[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_textio[1]_include.cmake")
include("/root/repo/build/tests/test_explorer[1]_include.cmake")
include("/root/repo/build/tests/test_activity[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_isolation[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_builder[1]_include.cmake")
include("/root/repo/build/tests/test_bus[1]_include.cmake")
