# Empty compiler generated dependencies file for mcrtl_vhdl.
# This may be replaced when dependencies are built.
