
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vhdl/emitter.cpp" "src/vhdl/CMakeFiles/mcrtl_vhdl.dir/emitter.cpp.o" "gcc" "src/vhdl/CMakeFiles/mcrtl_vhdl.dir/emitter.cpp.o.d"
  "/root/repo/src/vhdl/verilog.cpp" "src/vhdl/CMakeFiles/mcrtl_vhdl.dir/verilog.cpp.o" "gcc" "src/vhdl/CMakeFiles/mcrtl_vhdl.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/mcrtl_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcrtl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/mcrtl_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/mcrtl_dfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
