file(REMOVE_RECURSE
  "libmcrtl_vhdl.a"
)
