file(REMOVE_RECURSE
  "CMakeFiles/mcrtl_vhdl.dir/emitter.cpp.o"
  "CMakeFiles/mcrtl_vhdl.dir/emitter.cpp.o.d"
  "CMakeFiles/mcrtl_vhdl.dir/verilog.cpp.o"
  "CMakeFiles/mcrtl_vhdl.dir/verilog.cpp.o.d"
  "libmcrtl_vhdl.a"
  "libmcrtl_vhdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrtl_vhdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
