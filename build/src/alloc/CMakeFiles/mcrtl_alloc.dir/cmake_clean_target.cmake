file(REMOVE_RECURSE
  "libmcrtl_alloc.a"
)
