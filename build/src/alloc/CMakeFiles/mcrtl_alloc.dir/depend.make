# Empty dependencies file for mcrtl_alloc.
# This may be replaced when dependencies are built.
