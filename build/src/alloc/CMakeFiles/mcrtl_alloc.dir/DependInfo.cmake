
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/activity.cpp" "src/alloc/CMakeFiles/mcrtl_alloc.dir/activity.cpp.o" "gcc" "src/alloc/CMakeFiles/mcrtl_alloc.dir/activity.cpp.o.d"
  "/root/repo/src/alloc/binding.cpp" "src/alloc/CMakeFiles/mcrtl_alloc.dir/binding.cpp.o" "gcc" "src/alloc/CMakeFiles/mcrtl_alloc.dir/binding.cpp.o.d"
  "/root/repo/src/alloc/conventional.cpp" "src/alloc/CMakeFiles/mcrtl_alloc.dir/conventional.cpp.o" "gcc" "src/alloc/CMakeFiles/mcrtl_alloc.dir/conventional.cpp.o.d"
  "/root/repo/src/alloc/fu_binding.cpp" "src/alloc/CMakeFiles/mcrtl_alloc.dir/fu_binding.cpp.o" "gcc" "src/alloc/CMakeFiles/mcrtl_alloc.dir/fu_binding.cpp.o.d"
  "/root/repo/src/alloc/left_edge.cpp" "src/alloc/CMakeFiles/mcrtl_alloc.dir/left_edge.cpp.o" "gcc" "src/alloc/CMakeFiles/mcrtl_alloc.dir/left_edge.cpp.o.d"
  "/root/repo/src/alloc/lifetime.cpp" "src/alloc/CMakeFiles/mcrtl_alloc.dir/lifetime.cpp.o" "gcc" "src/alloc/CMakeFiles/mcrtl_alloc.dir/lifetime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/mcrtl_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcrtl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
