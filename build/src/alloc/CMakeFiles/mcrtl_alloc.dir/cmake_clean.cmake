file(REMOVE_RECURSE
  "CMakeFiles/mcrtl_alloc.dir/activity.cpp.o"
  "CMakeFiles/mcrtl_alloc.dir/activity.cpp.o.d"
  "CMakeFiles/mcrtl_alloc.dir/binding.cpp.o"
  "CMakeFiles/mcrtl_alloc.dir/binding.cpp.o.d"
  "CMakeFiles/mcrtl_alloc.dir/conventional.cpp.o"
  "CMakeFiles/mcrtl_alloc.dir/conventional.cpp.o.d"
  "CMakeFiles/mcrtl_alloc.dir/fu_binding.cpp.o"
  "CMakeFiles/mcrtl_alloc.dir/fu_binding.cpp.o.d"
  "CMakeFiles/mcrtl_alloc.dir/left_edge.cpp.o"
  "CMakeFiles/mcrtl_alloc.dir/left_edge.cpp.o.d"
  "CMakeFiles/mcrtl_alloc.dir/lifetime.cpp.o"
  "CMakeFiles/mcrtl_alloc.dir/lifetime.cpp.o.d"
  "libmcrtl_alloc.a"
  "libmcrtl_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrtl_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
