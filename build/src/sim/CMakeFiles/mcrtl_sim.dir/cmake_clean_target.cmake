file(REMOVE_RECURSE
  "libmcrtl_sim.a"
)
