# Empty dependencies file for mcrtl_sim.
# This may be replaced when dependencies are built.
