file(REMOVE_RECURSE
  "CMakeFiles/mcrtl_sim.dir/equivalence.cpp.o"
  "CMakeFiles/mcrtl_sim.dir/equivalence.cpp.o.d"
  "CMakeFiles/mcrtl_sim.dir/simulator.cpp.o"
  "CMakeFiles/mcrtl_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/mcrtl_sim.dir/stimulus.cpp.o"
  "CMakeFiles/mcrtl_sim.dir/stimulus.cpp.o.d"
  "CMakeFiles/mcrtl_sim.dir/vcd.cpp.o"
  "CMakeFiles/mcrtl_sim.dir/vcd.cpp.o.d"
  "libmcrtl_sim.a"
  "libmcrtl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrtl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
