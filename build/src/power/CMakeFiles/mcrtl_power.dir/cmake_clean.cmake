file(REMOVE_RECURSE
  "CMakeFiles/mcrtl_power.dir/estimator.cpp.o"
  "CMakeFiles/mcrtl_power.dir/estimator.cpp.o.d"
  "CMakeFiles/mcrtl_power.dir/report.cpp.o"
  "CMakeFiles/mcrtl_power.dir/report.cpp.o.d"
  "CMakeFiles/mcrtl_power.dir/tech_library.cpp.o"
  "CMakeFiles/mcrtl_power.dir/tech_library.cpp.o.d"
  "CMakeFiles/mcrtl_power.dir/trace.cpp.o"
  "CMakeFiles/mcrtl_power.dir/trace.cpp.o.d"
  "libmcrtl_power.a"
  "libmcrtl_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrtl_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
