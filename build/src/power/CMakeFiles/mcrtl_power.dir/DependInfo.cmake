
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/estimator.cpp" "src/power/CMakeFiles/mcrtl_power.dir/estimator.cpp.o" "gcc" "src/power/CMakeFiles/mcrtl_power.dir/estimator.cpp.o.d"
  "/root/repo/src/power/report.cpp" "src/power/CMakeFiles/mcrtl_power.dir/report.cpp.o" "gcc" "src/power/CMakeFiles/mcrtl_power.dir/report.cpp.o.d"
  "/root/repo/src/power/tech_library.cpp" "src/power/CMakeFiles/mcrtl_power.dir/tech_library.cpp.o" "gcc" "src/power/CMakeFiles/mcrtl_power.dir/tech_library.cpp.o.d"
  "/root/repo/src/power/trace.cpp" "src/power/CMakeFiles/mcrtl_power.dir/trace.cpp.o" "gcc" "src/power/CMakeFiles/mcrtl_power.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mcrtl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/mcrtl_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcrtl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/mcrtl_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/mcrtl_dfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
