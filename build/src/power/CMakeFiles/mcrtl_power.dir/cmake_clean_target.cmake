file(REMOVE_RECURSE
  "libmcrtl_power.a"
)
