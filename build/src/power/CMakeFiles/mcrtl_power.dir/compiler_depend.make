# Empty compiler generated dependencies file for mcrtl_power.
# This may be replaced when dependencies are built.
