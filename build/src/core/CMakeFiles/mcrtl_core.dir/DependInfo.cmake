
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/explorer.cpp" "src/core/CMakeFiles/mcrtl_core.dir/explorer.cpp.o" "gcc" "src/core/CMakeFiles/mcrtl_core.dir/explorer.cpp.o.d"
  "/root/repo/src/core/integrated.cpp" "src/core/CMakeFiles/mcrtl_core.dir/integrated.cpp.o" "gcc" "src/core/CMakeFiles/mcrtl_core.dir/integrated.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/mcrtl_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/mcrtl_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/split.cpp" "src/core/CMakeFiles/mcrtl_core.dir/split.cpp.o" "gcc" "src/core/CMakeFiles/mcrtl_core.dir/split.cpp.o.d"
  "/root/repo/src/core/synthesizer.cpp" "src/core/CMakeFiles/mcrtl_core.dir/synthesizer.cpp.o" "gcc" "src/core/CMakeFiles/mcrtl_core.dir/synthesizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mcrtl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mcrtl_power.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/mcrtl_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/mcrtl_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/mcrtl_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcrtl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
