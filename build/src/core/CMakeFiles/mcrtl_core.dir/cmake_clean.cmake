file(REMOVE_RECURSE
  "CMakeFiles/mcrtl_core.dir/explorer.cpp.o"
  "CMakeFiles/mcrtl_core.dir/explorer.cpp.o.d"
  "CMakeFiles/mcrtl_core.dir/integrated.cpp.o"
  "CMakeFiles/mcrtl_core.dir/integrated.cpp.o.d"
  "CMakeFiles/mcrtl_core.dir/partition.cpp.o"
  "CMakeFiles/mcrtl_core.dir/partition.cpp.o.d"
  "CMakeFiles/mcrtl_core.dir/split.cpp.o"
  "CMakeFiles/mcrtl_core.dir/split.cpp.o.d"
  "CMakeFiles/mcrtl_core.dir/synthesizer.cpp.o"
  "CMakeFiles/mcrtl_core.dir/synthesizer.cpp.o.d"
  "libmcrtl_core.a"
  "libmcrtl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrtl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
