# Empty compiler generated dependencies file for mcrtl_core.
# This may be replaced when dependencies are built.
