file(REMOVE_RECURSE
  "libmcrtl_core.a"
)
