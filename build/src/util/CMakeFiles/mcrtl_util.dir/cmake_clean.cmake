file(REMOVE_RECURSE
  "CMakeFiles/mcrtl_util.dir/rng.cpp.o"
  "CMakeFiles/mcrtl_util.dir/rng.cpp.o.d"
  "CMakeFiles/mcrtl_util.dir/strings.cpp.o"
  "CMakeFiles/mcrtl_util.dir/strings.cpp.o.d"
  "CMakeFiles/mcrtl_util.dir/table.cpp.o"
  "CMakeFiles/mcrtl_util.dir/table.cpp.o.d"
  "libmcrtl_util.a"
  "libmcrtl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrtl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
