file(REMOVE_RECURSE
  "libmcrtl_util.a"
)
