# Empty compiler generated dependencies file for mcrtl_util.
# This may be replaced when dependencies are built.
