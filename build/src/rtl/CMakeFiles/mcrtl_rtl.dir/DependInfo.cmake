
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/analysis.cpp" "src/rtl/CMakeFiles/mcrtl_rtl.dir/analysis.cpp.o" "gcc" "src/rtl/CMakeFiles/mcrtl_rtl.dir/analysis.cpp.o.d"
  "/root/repo/src/rtl/builder.cpp" "src/rtl/CMakeFiles/mcrtl_rtl.dir/builder.cpp.o" "gcc" "src/rtl/CMakeFiles/mcrtl_rtl.dir/builder.cpp.o.d"
  "/root/repo/src/rtl/clock.cpp" "src/rtl/CMakeFiles/mcrtl_rtl.dir/clock.cpp.o" "gcc" "src/rtl/CMakeFiles/mcrtl_rtl.dir/clock.cpp.o.d"
  "/root/repo/src/rtl/control.cpp" "src/rtl/CMakeFiles/mcrtl_rtl.dir/control.cpp.o" "gcc" "src/rtl/CMakeFiles/mcrtl_rtl.dir/control.cpp.o.d"
  "/root/repo/src/rtl/netlist.cpp" "src/rtl/CMakeFiles/mcrtl_rtl.dir/netlist.cpp.o" "gcc" "src/rtl/CMakeFiles/mcrtl_rtl.dir/netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alloc/CMakeFiles/mcrtl_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/mcrtl_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mcrtl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
