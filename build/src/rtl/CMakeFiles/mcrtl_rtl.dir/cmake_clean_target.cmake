file(REMOVE_RECURSE
  "libmcrtl_rtl.a"
)
