# Empty compiler generated dependencies file for mcrtl_rtl.
# This may be replaced when dependencies are built.
