file(REMOVE_RECURSE
  "CMakeFiles/mcrtl_rtl.dir/analysis.cpp.o"
  "CMakeFiles/mcrtl_rtl.dir/analysis.cpp.o.d"
  "CMakeFiles/mcrtl_rtl.dir/builder.cpp.o"
  "CMakeFiles/mcrtl_rtl.dir/builder.cpp.o.d"
  "CMakeFiles/mcrtl_rtl.dir/clock.cpp.o"
  "CMakeFiles/mcrtl_rtl.dir/clock.cpp.o.d"
  "CMakeFiles/mcrtl_rtl.dir/control.cpp.o"
  "CMakeFiles/mcrtl_rtl.dir/control.cpp.o.d"
  "CMakeFiles/mcrtl_rtl.dir/netlist.cpp.o"
  "CMakeFiles/mcrtl_rtl.dir/netlist.cpp.o.d"
  "libmcrtl_rtl.a"
  "libmcrtl_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrtl_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
