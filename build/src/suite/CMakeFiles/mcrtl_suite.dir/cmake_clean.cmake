file(REMOVE_RECURSE
  "CMakeFiles/mcrtl_suite.dir/benchmarks.cpp.o"
  "CMakeFiles/mcrtl_suite.dir/benchmarks.cpp.o.d"
  "libmcrtl_suite.a"
  "libmcrtl_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrtl_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
