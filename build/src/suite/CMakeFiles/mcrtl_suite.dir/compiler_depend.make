# Empty compiler generated dependencies file for mcrtl_suite.
# This may be replaced when dependencies are built.
