file(REMOVE_RECURSE
  "libmcrtl_suite.a"
)
