file(REMOVE_RECURSE
  "CMakeFiles/mcrtl_dfg.dir/dot.cpp.o"
  "CMakeFiles/mcrtl_dfg.dir/dot.cpp.o.d"
  "CMakeFiles/mcrtl_dfg.dir/graph.cpp.o"
  "CMakeFiles/mcrtl_dfg.dir/graph.cpp.o.d"
  "CMakeFiles/mcrtl_dfg.dir/interpreter.cpp.o"
  "CMakeFiles/mcrtl_dfg.dir/interpreter.cpp.o.d"
  "CMakeFiles/mcrtl_dfg.dir/op.cpp.o"
  "CMakeFiles/mcrtl_dfg.dir/op.cpp.o.d"
  "CMakeFiles/mcrtl_dfg.dir/random_graph.cpp.o"
  "CMakeFiles/mcrtl_dfg.dir/random_graph.cpp.o.d"
  "CMakeFiles/mcrtl_dfg.dir/schedule.cpp.o"
  "CMakeFiles/mcrtl_dfg.dir/schedule.cpp.o.d"
  "CMakeFiles/mcrtl_dfg.dir/textio.cpp.o"
  "CMakeFiles/mcrtl_dfg.dir/textio.cpp.o.d"
  "libmcrtl_dfg.a"
  "libmcrtl_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrtl_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
