# Empty compiler generated dependencies file for mcrtl_dfg.
# This may be replaced when dependencies are built.
