file(REMOVE_RECURSE
  "libmcrtl_dfg.a"
)
