
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfg/dot.cpp" "src/dfg/CMakeFiles/mcrtl_dfg.dir/dot.cpp.o" "gcc" "src/dfg/CMakeFiles/mcrtl_dfg.dir/dot.cpp.o.d"
  "/root/repo/src/dfg/graph.cpp" "src/dfg/CMakeFiles/mcrtl_dfg.dir/graph.cpp.o" "gcc" "src/dfg/CMakeFiles/mcrtl_dfg.dir/graph.cpp.o.d"
  "/root/repo/src/dfg/interpreter.cpp" "src/dfg/CMakeFiles/mcrtl_dfg.dir/interpreter.cpp.o" "gcc" "src/dfg/CMakeFiles/mcrtl_dfg.dir/interpreter.cpp.o.d"
  "/root/repo/src/dfg/op.cpp" "src/dfg/CMakeFiles/mcrtl_dfg.dir/op.cpp.o" "gcc" "src/dfg/CMakeFiles/mcrtl_dfg.dir/op.cpp.o.d"
  "/root/repo/src/dfg/random_graph.cpp" "src/dfg/CMakeFiles/mcrtl_dfg.dir/random_graph.cpp.o" "gcc" "src/dfg/CMakeFiles/mcrtl_dfg.dir/random_graph.cpp.o.d"
  "/root/repo/src/dfg/schedule.cpp" "src/dfg/CMakeFiles/mcrtl_dfg.dir/schedule.cpp.o" "gcc" "src/dfg/CMakeFiles/mcrtl_dfg.dir/schedule.cpp.o.d"
  "/root/repo/src/dfg/textio.cpp" "src/dfg/CMakeFiles/mcrtl_dfg.dir/textio.cpp.o" "gcc" "src/dfg/CMakeFiles/mcrtl_dfg.dir/textio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mcrtl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
