# Empty dependencies file for bench_table3_biquad.
# This may be replaced when dependencies are built.
