file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_biquad.dir/bench_table3_biquad.cpp.o"
  "CMakeFiles/bench_table3_biquad.dir/bench_table3_biquad.cpp.o.d"
  "bench_table3_biquad"
  "bench_table3_biquad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_biquad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
