file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_clocks.dir/bench_fig2_clocks.cpp.o"
  "CMakeFiles/bench_fig2_clocks.dir/bench_fig2_clocks.cpp.o.d"
  "bench_fig2_clocks"
  "bench_fig2_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
