# Empty dependencies file for bench_fig2_clocks.
# This may be replaced when dependencies are built.
