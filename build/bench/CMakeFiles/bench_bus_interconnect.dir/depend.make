# Empty dependencies file for bench_bus_interconnect.
# This may be replaced when dependencies are built.
