file(REMOVE_RECURSE
  "CMakeFiles/bench_bus_interconnect.dir/bench_bus_interconnect.cpp.o"
  "CMakeFiles/bench_bus_interconnect.dir/bench_bus_interconnect.cpp.o.d"
  "bench_bus_interconnect"
  "bench_bus_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bus_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
