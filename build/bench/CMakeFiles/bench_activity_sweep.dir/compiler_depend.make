# Empty compiler generated dependencies file for bench_activity_sweep.
# This may be replaced when dependencies are built.
