file(REMOVE_RECURSE
  "CMakeFiles/bench_activity_sweep.dir/bench_activity_sweep.cpp.o"
  "CMakeFiles/bench_activity_sweep.dir/bench_activity_sweep.cpp.o.d"
  "bench_activity_sweep"
  "bench_activity_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_activity_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
