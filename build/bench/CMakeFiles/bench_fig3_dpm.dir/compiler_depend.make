# Empty compiler generated dependencies file for bench_fig3_dpm.
# This may be replaced when dependencies are built.
