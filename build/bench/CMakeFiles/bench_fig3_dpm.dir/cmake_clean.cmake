file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_dpm.dir/bench_fig3_dpm.cpp.o"
  "CMakeFiles/bench_fig3_dpm.dir/bench_fig3_dpm.cpp.o.d"
  "bench_fig3_dpm"
  "bench_fig3_dpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_dpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
