file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_split.dir/bench_fig5_split.cpp.o"
  "CMakeFiles/bench_fig5_split.dir/bench_fig5_split.cpp.o.d"
  "bench_fig5_split"
  "bench_fig5_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
