file(REMOVE_RECURSE
  "CMakeFiles/bench_activity_binding.dir/bench_activity_binding.cpp.o"
  "CMakeFiles/bench_activity_binding.dir/bench_activity_binding.cpp.o.d"
  "bench_activity_binding"
  "bench_activity_binding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_activity_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
