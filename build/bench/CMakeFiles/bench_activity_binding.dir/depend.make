# Empty dependencies file for bench_activity_binding.
# This may be replaced when dependencies are built.
