# Empty dependencies file for bench_fig1_motivating.
# This may be replaced when dependencies are built.
