# Empty dependencies file for bench_duplication_baseline.
# This may be replaced when dependencies are built.
