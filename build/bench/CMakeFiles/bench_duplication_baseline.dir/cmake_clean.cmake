file(REMOVE_RECURSE
  "CMakeFiles/bench_duplication_baseline.dir/bench_duplication_baseline.cpp.o"
  "CMakeFiles/bench_duplication_baseline.dir/bench_duplication_baseline.cpp.o.d"
  "bench_duplication_baseline"
  "bench_duplication_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_duplication_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
