# Empty dependencies file for bench_power_profile.
# This may be replaced when dependencies are built.
