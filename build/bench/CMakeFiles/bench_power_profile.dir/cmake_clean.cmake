file(REMOVE_RECURSE
  "CMakeFiles/bench_power_profile.dir/bench_power_profile.cpp.o"
  "CMakeFiles/bench_power_profile.dir/bench_power_profile.cpp.o.d"
  "bench_power_profile"
  "bench_power_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
