file(REMOVE_RECURSE
  "CMakeFiles/bench_schedule_impact.dir/bench_schedule_impact.cpp.o"
  "CMakeFiles/bench_schedule_impact.dir/bench_schedule_impact.cpp.o.d"
  "bench_schedule_impact"
  "bench_schedule_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schedule_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
