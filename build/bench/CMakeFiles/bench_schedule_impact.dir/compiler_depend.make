# Empty compiler generated dependencies file for bench_schedule_impact.
# This may be replaced when dependencies are built.
