file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_facet.dir/bench_table1_facet.cpp.o"
  "CMakeFiles/bench_table1_facet.dir/bench_table1_facet.cpp.o.d"
  "bench_table1_facet"
  "bench_table1_facet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_facet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
