file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_nclocks.dir/bench_sweep_nclocks.cpp.o"
  "CMakeFiles/bench_sweep_nclocks.dir/bench_sweep_nclocks.cpp.o.d"
  "bench_sweep_nclocks"
  "bench_sweep_nclocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_nclocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
