# Empty dependencies file for bench_sweep_nclocks.
# This may be replaced when dependencies are built.
