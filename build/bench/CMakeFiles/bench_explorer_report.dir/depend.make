# Empty dependencies file for bench_explorer_report.
# This may be replaced when dependencies are built.
