file(REMOVE_RECURSE
  "CMakeFiles/bench_explorer_report.dir/bench_explorer_report.cpp.o"
  "CMakeFiles/bench_explorer_report.dir/bench_explorer_report.cpp.o.d"
  "bench_explorer_report"
  "bench_explorer_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_explorer_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
