file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_bandpass.dir/bench_table4_bandpass.cpp.o"
  "CMakeFiles/bench_table4_bandpass.dir/bench_table4_bandpass.cpp.o.d"
  "bench_table4_bandpass"
  "bench_table4_bandpass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_bandpass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
