file(REMOVE_RECURSE
  "libmcrtl_bench_common.a"
)
