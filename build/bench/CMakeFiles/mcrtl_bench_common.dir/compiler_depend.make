# Empty compiler generated dependencies file for mcrtl_bench_common.
# This may be replaced when dependencies are built.
