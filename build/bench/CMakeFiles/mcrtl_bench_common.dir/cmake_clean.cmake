file(REMOVE_RECURSE
  "CMakeFiles/mcrtl_bench_common.dir/table_common.cpp.o"
  "CMakeFiles/mcrtl_bench_common.dir/table_common.cpp.o.d"
  "libmcrtl_bench_common.a"
  "libmcrtl_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrtl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
