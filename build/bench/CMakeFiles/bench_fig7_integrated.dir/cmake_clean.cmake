file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_integrated.dir/bench_fig7_integrated.cpp.o"
  "CMakeFiles/bench_fig7_integrated.dir/bench_fig7_integrated.cpp.o.d"
  "bench_fig7_integrated"
  "bench_fig7_integrated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_integrated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
