file(REMOVE_RECURSE
  "CMakeFiles/bench_operand_isolation.dir/bench_operand_isolation.cpp.o"
  "CMakeFiles/bench_operand_isolation.dir/bench_operand_isolation.cpp.o.d"
  "bench_operand_isolation"
  "bench_operand_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_operand_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
