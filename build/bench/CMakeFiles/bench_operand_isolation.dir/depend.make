# Empty dependencies file for bench_operand_isolation.
# This may be replaced when dependencies are built.
