file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_hal.dir/bench_table2_hal.cpp.o"
  "CMakeFiles/bench_table2_hal.dir/bench_table2_hal.cpp.o.d"
  "bench_table2_hal"
  "bench_table2_hal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
