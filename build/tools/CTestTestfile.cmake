# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "mcrtl" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_synth "mcrtl" "synth" "facet" "--clocks" "2" "--computations" "200")
set_tests_properties(cli_synth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_table "mcrtl" "table" "motivating" "--computations" "100")
set_tests_properties(cli_table PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_emit "mcrtl" "emit" "hal" "--clocks" "3")
set_tests_properties(cli_emit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dot "mcrtl" "dot" "biquad" "--clocks" "2")
set_tests_properties(cli_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_split "mcrtl" "synth" "bandpass" "--method" "split" "--clocks" "3" "--computations" "200")
set_tests_properties(cli_split PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_usage "mcrtl" "frobnicate")
set_tests_properties(cli_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
