file(REMOVE_RECURSE
  "CMakeFiles/mcrtl_cli.dir/mcrtl_cli.cpp.o"
  "CMakeFiles/mcrtl_cli.dir/mcrtl_cli.cpp.o.d"
  "mcrtl"
  "mcrtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcrtl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
