# Empty dependencies file for mcrtl_cli.
# This may be replaced when dependencies are built.
